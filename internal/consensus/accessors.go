package consensus

import (
	"fmt"
	"strings"
)

// Accessors used by tests, the benchmark harness and the memory-consumption
// accounting (Table 2).

// Checkpoint returns the replica's current stable checkpoint.
func (r *Replica) Checkpoint() Checkpoint { return r.chkpt }

// SlotStateCount returns how many per-slot state entries are retained
// (bounded by the window — the finite-memory claim).
func (r *Replica) SlotStateCount() int { return len(r.slots) }

// PendingProposals returns the leader's queued, not-yet-proposed requests.
func (r *Replica) PendingProposals() int { return len(r.proposeQ) }

// ProposedCount returns the size of the leader's proposed-digest dedup map
// (pruned at stable checkpoints; bounded-memory regression tests watch it).
func (r *Replica) ProposedCount() int { return len(r.proposed) }

// SeenReqCount returns the size of the per-client highest-proposed map
// (pruned at stable checkpoints).
func (r *Replica) SeenReqCount() int { return len(r.seenReq) }

// ReqStoreCount returns how many direct client request copies are retained.
func (r *Replica) ReqStoreCount() int { return len(r.reqStore) }

// ExecStateCount returns the size of the per-client exactly-once map
// (aged at stable checkpoints; the client-churn regression tests watch it).
func (r *Replica) ExecStateCount() int { return len(r.exec) }

// DeferredCount returns how many wait-queue responses are still owed.
func (r *Replica) DeferredCount() int { return len(r.deferredResp) }

// EchoStateCount returns how many request digests have live echo tracking.
func (r *Replica) EchoStateCount() int { return len(r.echoes) }

// Progress summarizes the replica's pipeline position for stall
// diagnostics: the next slot this replica would propose into, the highest
// slot executed, the stable checkpoint floor, and how many PREPAREs are
// parked waiting for their client request copy.
func (r *Replica) Progress() (nextSlot, lastExec, chkptSeq Slot, waiting int) {
	for _, ss := range r.slots {
		if ss.waitingReq != nil {
			waiting++
		}
	}
	return r.nextSlot, r.lastApplied, r.chkpt.Seq, waiting
}

// StallReport renders the pipeline state of every slot between the last
// applied one and the proposal frontier — which slots are decided, which
// have vote masks pending, which wait for a client request copy — for the
// wall-clock harness's wedge diagnostics.
func (r *Replica) StallReport() string {
	var b strings.Builder
	hi := r.nextSlot
	if hi > r.lastApplied+8 {
		hi = r.lastApplied + 8
	}
	for s := r.lastApplied; s <= hi; s++ {
		_, dec := r.decided[s]
		fmt.Fprintf(&b, "[s%d dec=%v", s, dec)
		if ss := r.slots[s]; ss != nil {
			fmt.Fprintf(&b, " certify=%v commit=%v sent=%v wait=%v fb=%v",
				ss.willCertify, ss.willCommit, ss.sentFlags,
				ss.waitingReq != nil, ss.fallback.Pending())
		}
		b.WriteString("] ")
	}
	return b.String()
}

// Groups exposes per-broadcaster CTBcast statistics.
func (r *Replica) GroupStats() (fast, slow, summaries uint64) {
	for _, g := range r.groups {
		fast += g.FastDeliveries
		slow += g.SlowDeliveries
		summaries += g.SummariesUsed
	}
	return
}

// DisaggregatedBytes returns this replica's share of disaggregated memory
// on ONE memory node: the SWMR regions of all its CTBcast groups.
func (r *Replica) DisaggregatedBytes() int {
	total := 0
	for _, g := range r.groups {
		total += g.AllocatedDisaggregatedBytes()
	}
	// Every replica participates in the same n groups; the per-node total
	// is shared, so report it once (groups are identical across replicas).
	return total / r.cfg.n()
}

// LocalBytes approximates this replica's preallocated local memory: ring
// mirrors and buffers of all broadcast channels plus per-window request
// buffers. This drives the Table 2 reproduction.
func (r *Replica) LocalBytes() int {
	total := 0
	for _, g := range r.groups {
		total += g.AllocatedLocalBytes()
	}
	total += r.auxOut.AllocatedBytes()
	// Window request buffers (prepares, commits, certified state) at
	// MsgCap granularity, for every peer.
	total += r.cfg.Window * r.cfg.MsgCap * r.cfg.n()
	return total
}

// LateProposals counts requests proposed below their client's highest
// already-proposed number — the EchoTimeout path completing after its
// successors (diagnostics for pipelined clients; see enqueueProposal).
func (r *Replica) LateProposals() uint64 { return r.lateProposals }

// DroppedExecOld counts direct client requests discarded by the
// exactly-once execution dedup without a cached-result resend.
func (r *Replica) DroppedExecOld() uint64 { return r.droppedExecOld }
