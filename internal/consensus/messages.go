package consensus

import (
	"fmt"
	"sort"

	"repro/internal/ids"
	"repro/internal/wire"
	"repro/internal/xcrypto"
)

// View numbers views; the leader of view v is Replicas[v % n].
type View uint64

// Slot numbers consensus slots (the total order position of a request).
type Slot uint64

// Message tags, aliased from the wire registry. CTBcast carries the
// consensus-level messages (PREPARE, COMMIT, CHECKPOINT, SEAL_VIEW,
// NEW_VIEW); the auxiliary TBcast channel carries CERTIFY, WILL_CERTIFY,
// WILL_COMMIT and CERTIFY_CHECKPOINT; view change certificate shares
// travel as direct messages.
const (
	tagPrepare     = wire.TagPrepare
	tagCommit      = wire.TagCommit
	tagCheckpoint  = wire.TagCheckpoint
	tagSealView    = wire.TagSealView
	tagNewView     = wire.TagNewView
	tagNewViewFrag = wire.TagNewViewFrag
	tagCertify     = wire.TagCertify
	tagWillCertify = wire.TagWillCertify
	tagWillCommit  = wire.TagWillCommit
	tagCertifyCP   = wire.TagCertifyCP
	tagCertifyVC   = wire.TagCertifyVC
	tagStateReq    = wire.TagStateReq
	tagStateResp   = wire.TagStateResp
	// tagStagedQuery/tagStagedResp are the commit-phase-recovery hint scan:
	// a recovery agent asks a replica for its prepared-but-undecided
	// transactions and gets the (txid, coordinator group) pairs back. Both
	// ride ChanDirect; tagEcho (23) lives in rpc.go.
	tagStagedQuery = wire.TagStagedQuery
	tagStagedResp  = wire.TagStagedResp
	// tagJoinProbe/tagJoinAns are the cold-rejoin handshake: a restarted
	// replica probes for the cluster's sync point and f+1 matching answers
	// (view, stable checkpoint seq, state digest) fix it — no lone
	// Byzantine peer can define where the joiner syncs to. See rejoin.go.
	tagJoinProbe = wire.TagJoinProbe
	tagJoinAns   = wire.TagJoinAns
)

// Request is a client command. A no-op request (view-change filler) has
// Client == ids.None.
type Request struct {
	Client  ids.ID
	Num     uint64
	Payload []byte

	// digest memoizes the request fingerprint. Requests are immutable after
	// construction, so the cache is computed at most once per lineage:
	// copies of a Request (map inserts, parameter passing) carry it along,
	// and xcrypto fingerprinting never re-encodes the request.
	digest   [xcrypto.DigestLen]byte
	digestOK bool
}

// NoOp returns the view-change filler request.
func NoOp() Request { return Request{Client: ids.None} }

// IsNoOp reports whether the request is the filler.
func (r Request) IsNoOp() bool { return r.Client == ids.None }

// batchClient marks a batch container request (the §9 batching extension:
// the leader packs several client requests into one consensus slot).
const batchClient ids.ID = -2

// IsBatch reports whether the request is a batch container.
func (r Request) IsBatch() bool { return r.Client == batchClient }

// EncodeBatch packs several client requests into one container request.
func EncodeBatch(reqs []Request) Request {
	w := wire.NewWriter(64)
	w.Uvarint(uint64(len(reqs)))
	for _, q := range reqs {
		q.encode(w)
	}
	return Request{Client: batchClient, Payload: w.Finish()}
}

// DecodeBatch unpacks a batch container.
func DecodeBatch(r Request) ([]Request, error) {
	rd := wire.NewReader(r.Payload)
	n := int(rd.Uvarint())
	if n > 4096 {
		return nil, fmt.Errorf("consensus: oversized batch (%d requests)", n)
	}
	out := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, decodeRequest(rd))
	}
	if err := rd.Done(); err != nil {
		return nil, err
	}
	return out, nil
}

func (r Request) encode(w *wire.Writer) {
	w.I64(int64(r.Client))
	w.U64(r.Num)
	w.Bytes(r.Payload)
}

// decodeRequest parses a request in borrow mode: Payload aliases the
// reader's buffer. All consensus decode paths read from per-delivery
// network buffers or private self-delivery copies, which are never
// recycled, so retaining the view (reqStore, decided, prepares) is safe.
func decodeRequest(rd *wire.Reader) Request {
	return Request{Client: ids.ID(rd.I64()), Num: rd.U64(), Payload: rd.BytesView()}
}

// EncodeRequest serializes a request standalone (used by the RPC layer).
func EncodeRequest(r Request) []byte {
	w := wire.NewWriter(24 + len(r.Payload))
	r.encode(w)
	return w.Finish()
}

// DecodeRequest parses a standalone request.
func DecodeRequest(b []byte) (Request, error) {
	rd := wire.NewReader(b)
	r := decodeRequest(rd)
	if err := rd.Done(); err != nil {
		return Request{}, err
	}
	return r, nil
}

// Digest fingerprints a request without charging virtual time (cost is
// charged by callers at the protocol level). The fingerprint is computed
// lazily, once, through a pooled encode buffer; repeated calls — and calls
// on copies made after the first call — return the cached value.
func (r *Request) Digest() [xcrypto.DigestLen]byte {
	if !r.digestOK {
		w := wire.GetWriter(24 + len(r.Payload))
		r.encode(w)
		r.digest = xcrypto.DigestNoCharge(w.Finish())
		r.digestOK = true
		wire.PutWriter(w)
	}
	return r.digest
}

// Prepare is the leader's proposal for a slot.
type Prepare struct {
	View View
	Slot Slot
	Req  Request
}

// appendPrepare encodes a PREPARE frame into w (append-style so hot paths
// can use pooled writers).
func appendPrepare(w *wire.Writer, p Prepare) {
	w.U8(tagPrepare)
	w.U64(uint64(p.View))
	w.U64(uint64(p.Slot))
	p.Req.encode(w)
}

// encodePrepare allocates a standalone PREPARE frame (tests and Byzantine
// harnesses; hot paths use appendPrepare with pooled writers).
func encodePrepare(p Prepare) []byte {
	w := wire.NewWriter(40 + len(p.Req.Payload))
	appendPrepare(w, p)
	return w.Finish()
}

func decodePrepare(rd *wire.Reader) (Prepare, error) {
	p := Prepare{View: View(rd.U64()), Slot: Slot(rd.U64()), Req: decodeRequest(rd)}
	return p, rd.Err()
}

// appendCertifyPayload encodes what replicas sign in CERTIFY messages: it
// binds (view, slot) to the request fingerprint.
func appendCertifyPayload(w *wire.Writer, v View, s Slot, reqDigest [xcrypto.DigestLen]byte) {
	w.U8(tagCertify)
	w.U64(uint64(v))
	w.U64(uint64(s))
	w.Raw(reqDigest[:])
}

// certifyPayload allocates the CERTIFY payload standalone (tests and cold
// paths; hot paths use appendCertifyPayload with pooled writers).
func certifyPayload(v View, s Slot, reqDigest [xcrypto.DigestLen]byte) []byte {
	w := wire.NewWriter(56)
	appendCertifyPayload(w, v, s, reqDigest)
	return w.Finish()
}

// CommitCert is PΣ: an unforgeable proof, made of f+1 CERTIFY signatures,
// that the leader of View proposed Req in Slot.
type CommitCert struct {
	View View
	Slot Slot
	Req  Request
	Sigs map[ids.ID]xcrypto.Signature
}

func (c *CommitCert) encode(w *wire.Writer) {
	w.U64(uint64(c.View))
	w.U64(uint64(c.Slot))
	c.Req.encode(w)
	w.Uvarint(uint64(len(c.Sigs)))
	for _, id := range sortedIDs(c.Sigs) {
		w.I64(int64(id))
		w.Bytes(c.Sigs[id])
	}
}

func decodeCommitCert(rd *wire.Reader) (CommitCert, error) {
	c := CommitCert{View: View(rd.U64()), Slot: Slot(rd.U64()), Req: decodeRequest(rd)}
	n := int(rd.Uvarint())
	if n > 64 {
		return c, fmt.Errorf("consensus: oversized certificate (%d sigs)", n)
	}
	c.Sigs = make(map[ids.ID]xcrypto.Signature, n)
	for i := 0; i < n; i++ {
		id := ids.ID(rd.I64())
		c.Sigs[id] = rd.Bytes()
	}
	return c, rd.Err()
}

// Checkpoint is CΣ: the application state digest after applying all slots
// below Seq, signed by f+1 replicas, authorizing work on
// [Seq, Seq+Window-1].
type Checkpoint struct {
	Seq         Slot
	StateDigest [xcrypto.DigestLen]byte
	Sigs        map[ids.ID]xcrypto.Signature
}

// checkpointPayload is what replicas sign in CERTIFY_CHECKPOINT.
func checkpointPayload(seq Slot, digest [xcrypto.DigestLen]byte) []byte {
	w := wire.NewWriter(48)
	w.U8(tagCertifyCP)
	w.U64(uint64(seq))
	w.Raw(digest[:])
	return w.Finish()
}

func (c *Checkpoint) encode(w *wire.Writer) {
	w.U64(uint64(c.Seq))
	w.Raw(c.StateDigest[:])
	w.Uvarint(uint64(len(c.Sigs)))
	for _, id := range sortedIDs(c.Sigs) {
		w.I64(int64(id))
		w.Bytes(c.Sigs[id])
	}
}

func decodeCheckpoint(rd *wire.Reader) (Checkpoint, error) {
	c := Checkpoint{Seq: Slot(rd.U64())}
	copy(c.StateDigest[:], rd.Raw(xcrypto.DigestLen))
	n := int(rd.Uvarint())
	if n > 64 {
		return c, fmt.Errorf("consensus: oversized checkpoint cert (%d sigs)", n)
	}
	c.Sigs = make(map[ids.ID]xcrypto.Signature, n)
	for i := 0; i < n; i++ {
		id := ids.ID(rd.I64())
		c.Sigs[id] = rd.Bytes()
	}
	return c, rd.Err()
}

// Supersedes reports whether c authorizes strictly newer slots than other.
func (c *Checkpoint) Supersedes(other *Checkpoint) bool { return c.Seq > other.Seq }

// CertifiedState is the per-replica state attested during a view change:
// the replica's latest checkpoint and its most recent COMMIT per open slot
// (§5.3).
type CertifiedState struct {
	View       View
	Checkpoint Checkpoint
	Commits    map[Slot]CommitCert
}

func encodeCertifiedState(s *CertifiedState) []byte {
	w := wire.NewWriter(256)
	w.U64(uint64(s.View))
	s.Checkpoint.encode(w)
	w.Uvarint(uint64(len(s.Commits)))
	slots := make([]Slot, 0, len(s.Commits))
	for sl := range s.Commits {
		slots = append(slots, sl)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	for _, sl := range slots {
		c := s.Commits[sl]
		c.encode(w)
	}
	return w.Finish()
}

func decodeCertifiedState(b []byte) (CertifiedState, error) {
	rd := wire.NewReader(b)
	s := CertifiedState{View: View(rd.U64())}
	var err error
	s.Checkpoint, err = decodeCheckpoint(rd)
	if err != nil {
		return s, err
	}
	n := int(rd.Uvarint())
	if n > 4096 {
		return s, fmt.Errorf("consensus: oversized certified state (%d commits)", n)
	}
	s.Commits = make(map[Slot]CommitCert, n)
	for i := 0; i < n; i++ {
		c, err := decodeCommitCert(rd)
		if err != nil {
			return s, err
		}
		s.Commits[c.Slot] = c
	}
	if err := rd.Done(); err != nil {
		return s, err
	}
	return s, nil
}

// vcSharePayload is what replicas sign in CRTFY_VC: it attests that
// stateBytes is replica about's state as of view v.
func vcSharePayload(v View, about ids.ID, stateBytes []byte) []byte {
	dg := xcrypto.DigestNoCharge(stateBytes)
	w := wire.NewWriter(64)
	w.U8(tagCertifyVC)
	w.U64(uint64(v))
	w.I64(int64(about))
	w.Raw(dg[:])
	return w.Finish()
}

// ReplicaCert is one entry of a NEW_VIEW message: replica About's certified
// state with f+1 attesting signatures.
type ReplicaCert struct {
	About      ids.ID
	StateBytes []byte
	Sigs       map[ids.ID]xcrypto.Signature
}

// NewViewMsg announces the start of View with the certified states that
// constrain the new leader's proposals.
type NewViewMsg struct {
	View  View
	Certs []ReplicaCert
}

func encodeNewView(nv NewViewMsg) []byte {
	w := wire.NewWriter(512)
	w.U8(tagNewView)
	w.U64(uint64(nv.View))
	w.Uvarint(uint64(len(nv.Certs)))
	for _, c := range nv.Certs {
		w.I64(int64(c.About))
		w.Bytes(c.StateBytes)
		w.Uvarint(uint64(len(c.Sigs)))
		for _, id := range sortedIDs(c.Sigs) {
			w.I64(int64(id))
			w.Bytes(c.Sigs[id])
		}
	}
	return w.Finish()
}

func decodeNewView(rd *wire.Reader) (NewViewMsg, error) {
	nv := NewViewMsg{View: View(rd.U64())}
	n := int(rd.Uvarint())
	if n > 64 {
		return nv, fmt.Errorf("consensus: oversized NEW_VIEW (%d certs)", n)
	}
	for i := 0; i < n; i++ {
		c := ReplicaCert{About: ids.ID(rd.I64()), StateBytes: rd.Bytes()}
		ns := int(rd.Uvarint())
		if ns > 64 {
			return nv, fmt.Errorf("consensus: oversized replica cert (%d sigs)", ns)
		}
		c.Sigs = make(map[ids.ID]xcrypto.Signature, ns)
		for j := 0; j < ns; j++ {
			id := ids.ID(rd.I64())
			c.Sigs[id] = rd.Bytes()
		}
		nv.Certs = append(nv.Certs, c)
	}
	return nv, rd.Err()
}

// nvFragOverhead bounds the framing around one NEW_VIEW fragment's chunk:
// tag (1) + view (8) + idx/total uvarints (≤5 each) + chunk length prefix
// (≤5), rounded up for headroom.
const nvFragOverhead = 32

// nvFrag is one chunk of a NEW_VIEW message too large for the CTBcast
// per-message cap. The chunks of one train, concatenated in index order,
// are exactly the bytes encodeNewView produced (leading tag included).
// Trains ride the leader's own FIFO non-equivocated channel, so every
// correct receiver that delivers the full train reassembles identical
// bytes; a train interrupted by a summary jump is discarded, same as a
// monolithic NEW_VIEW the summary skipped.
type nvFrag struct {
	view       View
	idx, total int
	chunk      []byte
}

func encodeNewViewFrag(f nvFrag) []byte {
	w := wire.NewWriter(nvFragOverhead + len(f.chunk))
	w.U8(tagNewViewFrag)
	w.U64(uint64(f.view))
	w.Uvarint(uint64(f.idx))
	w.Uvarint(uint64(f.total))
	w.Bytes(f.chunk)
	return w.Finish()
}

func decodeNewViewFrag(rd *wire.Reader) (nvFrag, error) {
	f := nvFrag{View(rd.U64()), int(rd.Uvarint()), int(rd.Uvarint()), rd.Bytes()}
	if err := rd.Err(); err != nil {
		return f, err
	}
	if f.total < 2 || f.idx < 0 || f.idx >= f.total || len(f.chunk) == 0 {
		return f, fmt.Errorf("consensus: malformed NEW_VIEW fragment %d/%d (%dB)", f.idx, f.total, len(f.chunk))
	}
	return f, nil
}
