package consensus

import (
	"bytes"
	"sort"

	"repro/internal/ids"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/wire"
	"repro/internal/xcrypto"
)

// This file implements the view change (paper §5.3, Algorithm 3), the
// Byzantine message checks (Algorithm 5, wired in as the CTBcast Validate
// hook), and the CTBcast summary capture/apply hooks (Algorithm 4's state
// content).
//
// Three engineering details beyond the pseudocode:
//
//   - Exponential backoff: the suspicion timeout doubles with every view
//     change that fails to restore progress (a complete view change costs
//     around a millisecond of signature work, so a fixed microsecond-scale
//     timeout would preempt itself forever).
//   - View joining: a replica that observes f+1 distinct replicas sealing
//     a higher view joins it, keeping timers loosely synchronized.
//   - Seal-before-speak: every replica broadcasts SEAL_VIEW(v) on its own
//     CTBcast channel before sending any view-v message, because the
//     Byzantine checks validate each replica's messages against the view
//     that replica itself declared in FIFO order.

// ---------------------------------------------------------------------
// Leader suspicion with exponential backoff.
// ---------------------------------------------------------------------

func (r *Replica) suspicionTimeout() sim.Duration {
	shift := r.vcStreak
	if shift > 8 {
		shift = 8
	}
	return r.cfg.ViewChangeTimeout << shift
}

// armProgressTimer (re)arms the leader-suspicion timer while there is
// undecided work in flight.
func (r *Replica) armProgressTimer() {
	if r.cfg.ViewChangeTimeout <= 0 || r.stopped || r.observing() {
		return // an observing joiner never drives view changes
	}
	if !r.hasUndecidedWork() {
		return
	}
	if r.progressTimer.Pending() {
		return
	}
	r.progressTimer = r.proc.After(r.suspicionTimeout(), func() {
		if r.stopped || !r.hasUndecidedWork() {
			return
		}
		r.ViewChanges++
		r.vcStreak++
		r.changeView()
		r.armProgressTimer()
	})
}

func (r *Replica) resetProgressTimer() {
	r.progressTimer.Cancel()
	r.armProgressTimer()
}

// hasUndecidedWork reports whether this replica is waiting on the leader:
// a known client request that is neither proposed-and-decided nor covered
// by a checkpoint.
func (r *Replica) hasUndecidedWork() bool {
	// Prune executed entries first (pure deletes, order-free), then scan —
	// mixing the delete with the early return would make the pruned set
	// depend on map iteration order.
	for dg, req := range r.reqStore {
		if !req.IsNoOp() && r.executedReq(req) {
			delete(r.reqStore, dg) // executed: no longer evidence of stall
		}
	}
	for _, req := range r.reqStore {
		if !req.IsNoOp() {
			return true
		}
	}
	// Prepared-but-undecided slots also count (the leader proposed but the
	// protocol stalled).
	for s := range r.slots {
		if _, done := r.decided[s]; !done && s >= r.chkpt.Seq && r.hasPrepare(s) {
			return true
		}
	}
	return false
}

func (r *Replica) executedReq(req Request) bool {
	return r.seenExec(req.Client, req.Num)
}

func (r *Replica) seenExec(client ids.ID, num uint64) bool {
	e, ok := r.exec[client]
	return ok && e.num >= num
}

func (r *Replica) hasPrepare(s Slot) bool {
	for _, q := range r.cfg.Replicas {
		if _, ok := r.state[q].prepares[s]; ok {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Sealing views (Algorithm 3 lines 3-6).
// ---------------------------------------------------------------------

func (r *Replica) isSealing() bool { return r.sealTarget > r.view }

// changeView targets the next view — or jumps straight to the highest
// view any peer has declared, if that is further. Views can diverge by
// more than one during an asynchronous period (each replica's suspicion
// timer advances it unilaterally), and joinView's f+1-sealers rule cannot
// re-converge a two-replica active set from unequal views: each side
// advances one view per backed-off timeout, so a laggard never catches a
// leader moving at the same capped rate. Jumping on our own timeout is
// the PBFT catch-up analog and is safe — a seal only promises silence in
// lower views; decisions still need f+1 certificates in the new view. A
// Byzantine peer advertising an absurd seal can at worst drag every
// correct replica to the same high view number, where they converge.
func (r *Replica) changeView() {
	if r.isSealing() {
		return // a seal is already in flight; the backoff timer retries
	}
	target := r.view + 1
	for _, q := range r.cfg.Replicas {
		if sv := r.state[q].sealedView; sv > target {
			target = sv
		}
	}
	r.sealTo(target)
}

// joinView targets a specific higher view (observed via f+1 seals or a
// NEW_VIEW message).
func (r *Replica) joinView(v View) {
	if v <= r.view || v <= r.sealTarget {
		return
	}
	r.sealTo(v)
}

// sealTo honours fast-path promises, then seals into view v.
func (r *Replica) sealTo(v View) {
	r.sealTarget = v
	// Lines 4-5: every WILL_COMMIT promise must be backed by a COMMIT (or
	// a covering checkpoint) before SEAL_VIEW. Certify every slot with a
	// delivered, uncommitted prepare — from ANY view — so that peers'
	// promises can complete too: a promise for (v, s) implies every
	// correct replica delivered PREPARE(v, s), so each of them certifying
	// at seal time guarantees the f+1 shares PΣ needs, even when views
	// diverged transiently.
	for _, p := range r.cfg.Replicas {
		for _, s := range sortedSlots(r.state[p].prepares) {
			if pr := r.state[p].prepares[s]; s >= r.chkpt.Seq && !r.slot(s).sent(pr.View, sentCommit) {
				r.sendCertify(pr.View, s)
			}
		}
	}
	r.maybeSeal()
}

// maybeSeal broadcasts SEAL_VIEW once every promise is honoured.
func (r *Replica) maybeSeal() {
	if !r.isSealing() || r.stopped || r.observing() {
		return
	}
	// Pure scan first, then clear: bailing out of a loop that also deletes
	// would leave a map whose contents depend on iteration order.
	for key := range r.promised {
		if key.s >= r.chkpt.Seq && !r.slot(key.s).sent(key.v, sentCommit) {
			return // still waiting for the certificate
		}
	}
	clear(r.promised) // every promise honoured or checkpoint-covered
	v := r.sealTarget
	r.sealTarget = 0
	r.view = v
	w := wire.NewWriter(16)
	w.U8(tagSealView)
	w.U64(uint64(v))
	r.groups[r.cfg.Self].Broadcast(w.Finish())
	// If we are the new leader and the certificate set is already
	// complete, start the view now that we have declared it.
	if certs, ok := r.pendingNV[v]; ok && r.cfg.leaderOf(v) == r.cfg.Self && !r.newViewSent[v] {
		delete(r.pendingNV, v)
		r.newViewSent[v] = true
		r.startView(v, certs)
	}
	r.reprocessPrepares()
	// Restart the suspicion window: the new view's leader deserves a full
	// (backed-off) timeout before being abandoned in turn.
	r.resetProgressTimer()
}

// onSealView implements lines 8-11: record the seal, certify the sealer's
// state toward the new leader, and join views the quorum is moving to.
func (r *Replica) onSealView(p ids.ID, v View) {
	st := r.state[p]
	if v <= st.view {
		// Not a view advance: a correct replica only re-declares a view it
		// already held when resuming after a cold restart (its reborn
		// channel must re-state the view before anything else). Ignore —
		// and in particular do NOT clear newViewUsed, whose strict-increase
		// coupling is what makes a second NEW_VIEW in the same view
		// Byzantine.
		return
	}
	st.sealedView = v
	st.view = v
	st.newViewUsed = false
	if r.observing() {
		// Passive view tracking while rejoining: record the seal and follow
		// the quorum's view, but sign nothing (an amnesiac CertifyVC could
		// omit promises this replica made before it crashed) and broadcast
		// no seal of our own.
		if v > r.view {
			sealers := 0
			for _, q := range r.cfg.Replicas {
				if r.state[q].sealedView >= v {
					sealers++
				}
			}
			if sealers >= r.cfg.F+1 {
				r.view = v
			}
		}
		return
	}
	// Certify p's state as this replica has delivered it.
	cs := CertifiedState{
		View:       v,
		Checkpoint: st.checkpoint,
		Commits:    make(map[Slot]CommitCert, len(st.commits)),
	}
	for s, c := range st.commits {
		if r.inWindowOf(&st.checkpoint, s) {
			cs.Commits[s] = c
		}
	}
	stateBytes := encodeCertifiedState(&cs)
	sig := r.signer.Sign(r.proc, vcSharePayload(v, p, stateBytes))
	w := wire.NewWriter(64 + len(stateBytes))
	w.U8(tagCertifyVC)
	w.U64(uint64(v))
	w.I64(int64(p))
	w.Bytes(stateBytes)
	w.Bytes(sig)
	r.rt.Send(r.cfg.leaderOf(v), router.ChanDirect, w.Finish())

	// Join if f+1 distinct replicas sealed at least v.
	if v > r.view && v > r.sealTarget {
		sealers := 0
		for _, q := range r.cfg.Replicas {
			if r.state[q].sealedView >= v {
				sealers++
			}
		}
		if sealers >= r.cfg.F+1 {
			r.joinView(v)
		}
	}
}

// reprocessPrepares re-endorses prepares of the current view that arrived
// while this replica was still sealing.
func (r *Replica) reprocessPrepares() {
	leader := r.cfg.leaderOf(r.view)
	for _, s := range sortedSlots(r.state[leader].prepares) {
		pr := r.state[leader].prepares[s]
		if pr.View != r.view || !r.inWindow(s) {
			continue
		}
		if _, done := r.decided[s]; done {
			continue
		}
		r.endorseOrWait(pr)
	}
}

// onDirect dispatches direct messages (view-change shares, echoes, state
// transfer).
func (r *Replica) onDirect(from ids.ID, payload []byte) {
	if r.stopped {
		return
	}
	rd := wire.NewReader(payload)
	tag := rd.U8()
	switch tag {
	case tagCertifyVC:
		v := View(rd.U64())
		about := ids.ID(rd.I64())
		stateBytes := rd.Bytes()
		sig := rd.Bytes()
		if rd.Done() == nil {
			r.onCertifyVC(from, v, about, stateBytes, sig)
		}
	case tagStateReq, tagStateResp:
		r.onStateTransfer(from, tag, rd)
	case tagEcho:
		r.onEcho(from, rd)
	case tagStagedQuery:
		r.onStagedQuery(from, rd)
	case tagJoinProbe:
		r.onJoinProbe(from, rd)
	case tagJoinAns:
		r.onJoinAns(from, rd)
	}
}

// onCertifyVC implements lines 13-19 at the new leader: collect f+1
// matching shares about f+1 distinct replicas, then broadcast NEW_VIEW and
// re-propose the open slots.
func (r *Replica) onCertifyVC(from ids.ID, v View, about ids.ID, stateBytes []byte, sig xcrypto.Signature) {
	if r.cfg.leaderOf(v) != r.cfg.Self || v < r.view || r.newViewSent[v] || r.observing() {
		// Observing: an amnesiac leader must not start a view; the
		// followers' suspicion timers move the cluster to the next one.
		return
	}
	if r.cfg.indexOf(from) < 0 || r.cfg.indexOf(about) < 0 {
		return
	}
	if !r.signer.Verify(r.proc, from, vcSharePayload(v, about, stateBytes), sig) {
		return
	}
	if r.vcShares[v] == nil {
		r.vcShares[v] = make(map[ids.ID]map[ids.ID]vcShare)
	}
	if r.vcShares[v][about] == nil {
		r.vcShares[v][about] = make(map[ids.ID]vcShare)
	}
	r.vcShares[v][about][from] = vcShare{stateBytes: stateBytes, sig: sig}

	// A replica's state is certified once f+1 signers agree on the bytes.
	// The certified slice feeds straight into the NEW_VIEW message
	// (startView truncates it to f+1), so build it in sorted order — about
	// IDs ascending, candidate states lexicographic — to keep the message
	// bytes identical across runs.
	certified := make([]ReplicaCert, 0, r.cfg.n())
	for _, aboutID := range sortedIDs(r.vcShares[v]) {
		shares := r.vcShares[v][aboutID]
		byState := make(map[string][]ids.ID)
		for _, signer := range sortedIDs(shares) {
			sh := shares[signer]
			byState[string(sh.stateBytes)] = append(byState[string(sh.stateBytes)], signer)
		}
		states := make([]string, 0, len(byState))
		for st := range byState {
			states = append(states, st)
		}
		sort.Strings(states)
		for _, stateStr := range states {
			signers := byState[stateStr]
			if len(signers) >= r.cfg.F+1 {
				sigs := make(map[ids.ID]xcrypto.Signature, len(signers))
				for _, s := range signers {
					sigs[s] = shares[s].sig
				}
				certified = append(certified, ReplicaCert{
					About:      aboutID,
					StateBytes: []byte(stateStr),
					Sigs:       sigs,
				})
				break
			}
		}
	}
	if len(certified) < r.cfg.F+1 {
		return
	}
	if r.view < v {
		// We must declare (seal) view v ourselves before speaking in it;
		// stash the certificates and finish when the seal lands.
		r.pendingNV[v] = certified
		r.joinView(v)
		return
	}
	if r.view == v {
		r.newViewSent[v] = true
		r.startView(v, certified)
	}
}

// startView is the new leader's half of lines 15-19. The caller guarantees
// r.view == v and that SEAL_VIEW(v) was broadcast before.
func (r *Replica) startView(v View, certs []ReplicaCert) {
	nv := NewViewMsg{View: v, Certs: certs[:r.cfg.F+1]}
	r.broadcastNewView(nv)
	r.state[r.cfg.Self].newView = &nv
	// Adopt the highest certified checkpoint.
	for _, c := range nv.Certs {
		cs, err := decodeCertifiedState(c.StateBytes)
		if err != nil {
			continue
		}
		r.maybeCheckpoint(cs.Checkpoint)
	}
	// Re-propose every open slot per MustPropose.
	for s := r.chkpt.Seq; s < r.chkpt.Seq+Slot(r.cfg.Window); s++ {
		req, any := r.mustPropose(s, nv.Certs)
		if any {
			break // slots beyond the certified range take fresh requests
		}
		p := Prepare{View: v, Slot: s, Req: req}
		if s >= r.nextSlot {
			r.nextSlot = s + 1
		}
		w := wire.GetWriter(40 + len(p.Req.Payload))
		appendPrepare(w, p)
		r.groups[r.cfg.Self].Broadcast(w.Finish())
		wire.PutWriter(w)
	}
	r.rebroadcastPending()
	r.pumpProposals()
}

// broadcastNewView puts nv on this leader's own channel. The certified
// states it carries scale with the in-flight window (up to f+1 replicas'
// undecided commits, request payloads included), so the message can
// legitimately exceed the channel's per-message cap; it then travels as a
// FIFO train of tagNewViewFrag chunks that receivers reassemble — the
// channel's non-equivocation covers the train exactly as it would the
// monolithic message.
func (r *Replica) broadcastNewView(nv NewViewMsg) {
	b := encodeNewView(nv)
	g := r.groups[r.cfg.Self]
	if len(b) <= g.MsgCap() {
		g.Broadcast(b)
		return
	}
	chunk := g.MsgCap() - nvFragOverhead
	total := (len(b) + chunk - 1) / chunk
	for i := 0; i < total; i++ {
		lo, hi := i*chunk, (i+1)*chunk
		if hi > len(b) {
			hi = len(b)
		}
		g.Broadcast(encodeNewViewFrag(nvFrag{view: nv.View, idx: i, total: total, chunk: b[lo:hi]}))
		r.NewViewFragsSent++
	}
}

// mustPropose implements lines 25-27. any=true means the slot is beyond
// every certified commit and checkpoint: the leader may propose fresh
// requests there.
func (r *Replica) mustPropose(s Slot, certs []ReplicaCert) (Request, bool) {
	maxOpen := Slot(0)
	var best *CommitCert
	for _, c := range certs {
		cs, err := decodeCertifiedState(c.StateBytes)
		if err != nil {
			continue
		}
		for sl := range cs.Commits {
			if sl > maxOpen {
				maxOpen = sl
			}
		}
		if cc, ok := cs.Commits[s]; ok && (best == nil || cc.View > best.View) {
			cc := cc
			best = &cc
		}
	}
	if best != nil {
		return best.Req, false
	}
	if s > maxOpen {
		return Request{}, true
	}
	return NoOp(), false
}

// onNewView implements lines 21-23 at followers.
func (r *Replica) onNewView(p ids.ID, nv NewViewMsg) {
	st := r.state[p]
	st.newView = &nv
	st.newViewUsed = false
	// Adopt the highest certified checkpoint from the certificates.
	for _, c := range nv.Certs {
		cs, err := decodeCertifiedState(c.StateBytes)
		if err != nil {
			continue
		}
		r.maybeCheckpoint(cs.Checkpoint)
	}
	if r.observing() {
		// Passive view tracking: the NEW_VIEW message is f+1-certified, so
		// a rejoining replica may follow it without sealing or re-echoing.
		if nv.View > r.view {
			r.view = nv.View
		}
		return
	}
	// Catch up to the new view (line 23), declaring it on our own channel.
	r.joinView(nv.View)
	r.rebroadcastPending()
	r.reprocessPrepares()
	r.resetProgressTimer()
}

// ---------------------------------------------------------------------
// Byzantine checks (Algorithm 5) — the CTBcast Validate hook.
// ---------------------------------------------------------------------

// validateMsg vets broadcaster p's next FIFO message. Returning false
// proves p Byzantine and blocks its channel (Algorithm 2 line 1).
func (r *Replica) validateMsg(p ids.ID, m []byte) bool {
	rd := wire.NewReader(m)
	st := r.state[p]
	switch rd.U8() {
	case tagPrepare:
		pr, err := decodePrepare(rd)
		if err != nil || rd.Done() != nil {
			return false
		}
		if st.view != pr.View || r.cfg.leaderOf(pr.View) != p {
			return false
		}
		if !r.inWindowOf(&st.checkpoint, pr.Slot) {
			return false
		}
		if prev, dup := st.prepares[pr.Slot]; dup && prev.View == pr.View {
			return false // p already prepared this slot in this view
		}
		if pr.View > 0 {
			if st.newView == nil {
				return false
			}
			req, any := r.mustPropose(pr.Slot, st.newView.Certs)
			if !any && !bytes.Equal(EncodeRequest(req), EncodeRequest(pr.Req)) {
				return false
			}
		}
		return true
	case tagCommit:
		c, err := decodeCommitCert(rd)
		if err != nil || rd.Done() != nil {
			return false
		}
		if !r.inWindowOf(&st.checkpoint, c.Slot) {
			return false
		}
		if c.View > st.view {
			return false
		}
		// Verify PΣ: f+1 valid CERTIFY signatures over the request digest
		// (cached shares verified on arrival cost nothing here).
		dg := c.Req.Digest()
		valid := 0
		for q, sig := range c.Sigs {
			if r.cfg.indexOf(q) < 0 {
				continue
			}
			if r.verifyCertifySig(c.View, c.Slot, dg, q, sig) {
				valid++
			}
		}
		return valid >= r.cfg.F+1
	case tagCheckpoint:
		cp, err := decodeCheckpoint(rd)
		if err != nil || rd.Done() != nil {
			return false
		}
		if !cp.Supersedes(&st.checkpoint) {
			return false
		}
		return r.verifyCheckpointCert(&cp)
	case tagSealView:
		_ = rd.U64()
		if rd.Done() != nil {
			return false
		}
		// Any well-formed view declaration is acceptable: a cold-rejoined
		// replica re-declares its current view as the first message of its
		// reborn channel, and different peers' frozen FIFO prefixes may
		// record different pre-crash views for it, so a strict v > st.view
		// check would brand a correct joiner Byzantine at some peers.
		// onSealView ignores non-advancing seals, so tolerance is free.
		return true
	case tagNewView:
		nv, err := decodeNewView(rd)
		if err != nil || rd.Done() != nil {
			return false
		}
		return r.validNewView(p, st, nv)
	case tagNewViewFrag:
		fr, err := decodeNewViewFrag(rd)
		if err != nil || rd.Done() != nil {
			return false
		}
		if r.cfg.leaderOf(st.view) != p || fr.view != st.view {
			return false
		}
		if st.newViewUsed {
			return false // the train must precede any prepare in the view
		}
		if fr.total > r.maxNewViewFrags() {
			return false // larger than any legitimate NEW_VIEW could be
		}
		if fr.idx == 0 {
			return true // always starts a fresh train (channel-reset re-push)
		}
		if st.nvSkip || st.nvTotal != fr.total || st.nvNext != fr.idx || st.nvView != fr.view {
			// Mid-train resume after a summary jump healed a FIFO gap:
			// the prefix is gone, so delivery discards the remainder —
			// not proof of a Byzantine leader.
			return true
		}
		if fr.idx < fr.total-1 {
			return true
		}
		// Final chunk: the reassembled bytes must validate exactly like a
		// monolithic NEW_VIEW (delivery appends the chunk after us).
		buf := make([]byte, 0, len(st.nvBuf)+len(fr.chunk))
		buf = append(append(buf, st.nvBuf...), fr.chunk...)
		frd := wire.NewReader(buf)
		if frd.U8() != tagNewView {
			return false
		}
		nv, err := decodeNewView(frd)
		if err != nil || frd.Done() != nil {
			return false
		}
		return r.validNewView(p, st, nv)
	}
	return false // unknown tag: Byzantine
}

// validNewView vets a (possibly reassembled) NEW_VIEW from broadcaster p:
// it must open p's current view as its first non-CHECKPOINT message and
// carry f+1 distinct replica certs, each with f+1 valid attesting
// signatures over its certified state.
func (r *Replica) validNewView(p ids.ID, st *replicaState, nv NewViewMsg) bool {
	if r.cfg.leaderOf(st.view) != p || nv.View != st.view {
		return false
	}
	if st.newViewUsed {
		return false // must be p's first non-CHECKPOINT message in the view
	}
	seen := make(map[ids.ID]bool)
	for _, c := range nv.Certs {
		if seen[c.About] || r.cfg.indexOf(c.About) < 0 {
			return false
		}
		seen[c.About] = true
		cs, err := decodeCertifiedState(c.StateBytes)
		if err != nil || cs.View != nv.View {
			return false
		}
		valid := 0
		for q, sig := range c.Sigs {
			if r.cfg.indexOf(q) < 0 {
				continue
			}
			if r.signer.Verify(r.proc, q, vcSharePayload(nv.View, c.About, c.StateBytes), sig) {
				valid++
			}
		}
		if valid < r.cfg.F+1 {
			return false
		}
	}
	return len(nv.Certs) >= r.cfg.F+1
}

// maxNewViewFrags bounds a fragment train's advertised length: the largest
// legitimate NEW_VIEW is f+1 replica certs, each a certified state no
// bigger than the channel summary cap plus f+1 signatures and framing.
// Anything advertising more chunks than that is Byzantine.
func (r *Replica) maxNewViewFrags() int {
	perCert := r.cfg.Window*(r.cfg.MsgCap+512) + 4096 // = the group SummaryCap
	maxBytes := (r.cfg.F+1)*(perCert+(r.cfg.F+1)*(xcrypto.SigLen+16)+64) + 64
	chunk := r.cfg.groupMsgCap() - nvFragOverhead
	return (maxBytes+chunk-1)/chunk + 1
}

// ---------------------------------------------------------------------
// CTBcast summaries: capture / apply the consensus-level state[p].
// ---------------------------------------------------------------------

// captureState serializes state[p] deterministically: every correct
// replica that delivered the same FIFO prefix produces identical bytes,
// which is what lets f+1 shares match.
func (r *Replica) captureState(p ids.ID) []byte {
	st := r.state[p]
	cs := CertifiedState{
		View:       st.view,
		Checkpoint: st.checkpoint,
		Commits:    make(map[Slot]CommitCert, len(st.commits)),
	}
	// Only commits inside p's declared window are relevant (older slots
	// are covered by the checkpoint); this also bounds the summary size.
	for s, c := range st.commits {
		if r.inWindowOf(&st.checkpoint, s) {
			cs.Commits[s] = c
		}
	}
	return encodeCertifiedState(&cs)
}

// applySummary installs a certified summary of p's stream for a receiver
// that missed messages: the summarized checkpoint and commits become
// state[p], and their consensus effects replay.
func (r *Replica) applySummary(p ids.ID, stateBytes []byte) {
	cs, err := decodeCertifiedState(stateBytes)
	if err != nil {
		return
	}
	st := r.state[p]
	st.view = cs.View
	// A summary jump may have skipped part of a NEW_VIEW fragment train;
	// the prefix is unrecoverable, so discard the train's remainder as it
	// arrives (the skipped NEW_VIEW itself is gone either way — summaries
	// carry checkpoints and commits, not view-opening messages).
	st.nvBuf, st.nvTotal, st.nvNext, st.nvSkip = nil, 0, 0, true
	if cs.Checkpoint.Supersedes(&st.checkpoint) {
		st.checkpoint = cs.Checkpoint
		r.maybeCheckpoint(cs.Checkpoint)
	}
	// Slot order: onCommit can decide slots and emit messages.
	for _, s := range sortedSlots(cs.Commits) {
		c := cs.Commits[s]
		st.commits[s] = c
		r.onCommit(p, c)
	}
}
