package consensus_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/sim"
)

// TestLaggingReplicaCatchesUpViaStateTransfer partitions a follower for
// longer than a full checkpoint window, so when it reconnects the decided
// slots it missed are already garbage-collected everywhere — the only way
// back is the state-transfer extension: fetch the f+1-certified snapshot
// and resume from the checkpoint.
func TestLaggingReplicaCatchesUpViaStateTransfer(t *testing.T) {
	u := flipCluster(cluster.Options{
		Seed:          2,
		NewApp:        func() app.StateMachine { return app.NewKV(0) },
		Window:        8,
		Tail:          8,
		SlowPathDelay: 100 * sim.Microsecond,
		CTBSlowDelay:  100 * sim.Microsecond,
	})
	defer u.Stop()

	// Cut replica 2 off from its peers (client stays connected so request
	// traffic does not stall on it).
	u.Net.Partition(u.ReplicaIDs[2], u.ReplicaIDs[0])
	u.Net.Partition(u.ReplicaIDs[2], u.ReplicaIDs[1])

	// Drive well past several checkpoint windows (window=8, 30 requests).
	for i := 0; i < 30; i++ {
		key := []byte(fmt.Sprintf("k%02d", i))
		res, _ := u.InvokeSync(0, app.EncodeKVSet(key, []byte("v")), 100*sim.Millisecond)
		if res == nil {
			t.Fatalf("request %d stalled with one partitioned follower", i)
		}
	}
	if got := u.Replicas[2].LastApplied(); got != 0 {
		t.Fatalf("partitioned replica applied %d slots", got)
	}

	// Heal and give retransmission, summaries, checkpoints and state
	// transfer time to work.
	u.Net.HealAll()
	u.Eng.RunFor(200 * sim.Millisecond)
	// Fresh traffic accelerates dissemination of the latest checkpoint.
	for i := 30; i < 34; i++ {
		key := []byte(fmt.Sprintf("k%02d", i))
		u.InvokeSync(0, app.EncodeKVSet(key, []byte("v")), 100*sim.Millisecond)
	}
	u.Eng.RunFor(200 * sim.Millisecond)

	lag := u.Replicas[2].LastApplied()
	if lag < 24 {
		t.Fatalf("lagging replica only reached slot %d (no state transfer?)", lag)
	}
	// Its state must equal another replica's at the same progress point —
	// and since KV state is cumulative, spot-check the early keys arrived
	// via snapshot even though their slots were pruned.
	kv := app.NewKV(0)
	kv.Restore(u.Apps[2].Snapshot())
	if kv.Len() < 24 {
		t.Fatalf("restored replica has %d keys, want >=24", kv.Len())
	}
	if u.Replicas[0].LastApplied() == u.Replicas[2].LastApplied() &&
		!bytes.Equal(u.Apps[0].Snapshot(), u.Apps[2].Snapshot()) {
		t.Fatal("state transfer produced divergent state")
	}
}

// TestRestartRejoinsUnderLossyFabric restarts a crashed follower while the
// network is pre-GST: every message — JOIN probes, JOIN answers, snapshot
// requests and the snapshot itself — is dropped with probability 0.25 and
// delayed by up to 300us. The cold-rejoin path must make progress purely
// through its retry timers (probe re-arm, rotating snapshot pulls among
// the checkpoint's signers), and the loss-induced view changes mean the
// sync point moves under the joiner mid-pull. After GST everything must
// converge: rejoin complete, exactly one Rejoin counted, state identical.
func TestRestartRejoinsUnderLossyFabric(t *testing.T) {
	u := flipCluster(cluster.Options{
		Seed:              5,
		NewApp:            func() app.StateMachine { return app.NewKV(0) },
		Window:            8,
		Tail:              8,
		ViewChangeTimeout: 3 * sim.Millisecond,
		SlowPathDelay:     30 * sim.Microsecond,
		CTBSlowDelay:      30 * sim.Microsecond,
	})
	defer u.Stop()

	set := func(i int, wait sim.Duration) bool {
		key := []byte(fmt.Sprintf("k%03d", i))
		res, _ := u.InvokeSync(0, app.EncodeKVSet(key, []byte("v")), wait)
		return res != nil
	}
	for i := 0; i < 4; i++ {
		if !set(i, 100*sim.Millisecond) {
			t.Fatalf("warmup op %d failed", i)
		}
	}

	const victim = 2
	if err := u.KillReplica(victim); err != nil {
		t.Fatal(err)
	}
	// Past several windows: the victim's slots are pruned cluster-wide.
	for i := 4; i < 32; i++ {
		if !set(i, 200*sim.Millisecond) {
			t.Fatalf("op %d failed with victim down", i)
		}
	}

	// Asynchronous period covering the whole rejoin: drops and delays start
	// the moment the victim is reborn.
	gst := u.Eng.Now().Add(sim.Duration(40 * sim.Millisecond))
	u.Net.SetGST(gst, 300*sim.Microsecond, 0.25)
	if err := u.RestartReplica(victim); err != nil {
		t.Fatal(err)
	}
	// Best-effort traffic through the lossy window — the client has no
	// retransmission layer, so individual ops may time out; what matters is
	// that decisions keep flowing so checkpoints can advance past the
	// joiner's sync point.
	// completed during the async period, when nothing is guaranteed.
	tried, completed := 0, 0
	for u.Eng.Now() < gst {
		tried++
		if set(100+tried, 5*sim.Millisecond) {
			completed++
		}
	}
	t.Logf("lossy window: %d/%d ops completed, view now %d",
		completed, tried, u.Replicas[0].View())
	if u.Replicas[0].View() == 0 {
		t.Fatal("loss never forced a view change — the scenario is not " +
			"exercising a moving sync point (pick a harsher seed/drop rate)")
	}

	// Give the backed-off suspicion timers room to converge the views: after
	// a dozen failed view changes the exponential backoff (ViewChangeTimeout
	// << vcStreak, capped at 8) means the next catch-up jump can be hundreds
	// of milliseconds out. GST promises eventual liveness, not instant.
	u.Eng.RunFor(400 * sim.Millisecond)

	// Post-GST: ordered ops must succeed again, and the rejoin must finish.
	for i := 0; i < 8; i++ {
		if !set(200+i, 200*sim.Millisecond) {
			t.Fatalf("post-GST op %d failed", i)
		}
	}
	u.Eng.RunFor(100 * sim.Millisecond)

	r := u.Replicas[victim]
	if r.Recovering() {
		t.Fatal("victim still recovering after GST and drain")
	}
	if r.Rejoins != 1 {
		t.Fatalf("victim Rejoins = %d, want 1", r.Rejoins)
	}
	if got, want := r.LastApplied(), u.Replicas[0].LastApplied(); got < want-8 {
		t.Fatalf("rejoined replica applied %d, peer %d (no catch-up?)", got, want)
	}
	if u.Replicas[0].LastApplied() == r.LastApplied() &&
		!bytes.Equal(u.Apps[0].Snapshot(), u.Apps[victim].Snapshot()) {
		t.Fatal("lossy-fabric rejoin produced divergent state")
	}
}
