package consensus_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/sim"
)

// TestLaggingReplicaCatchesUpViaStateTransfer partitions a follower for
// longer than a full checkpoint window, so when it reconnects the decided
// slots it missed are already garbage-collected everywhere — the only way
// back is the state-transfer extension: fetch the f+1-certified snapshot
// and resume from the checkpoint.
func TestLaggingReplicaCatchesUpViaStateTransfer(t *testing.T) {
	u := flipCluster(cluster.Options{
		Seed:          2,
		NewApp:        func() app.StateMachine { return app.NewKV(0) },
		Window:        8,
		Tail:          8,
		SlowPathDelay: 100 * sim.Microsecond,
		CTBSlowDelay:  100 * sim.Microsecond,
	})
	defer u.Stop()

	// Cut replica 2 off from its peers (client stays connected so request
	// traffic does not stall on it).
	u.Net.Partition(u.ReplicaIDs[2], u.ReplicaIDs[0])
	u.Net.Partition(u.ReplicaIDs[2], u.ReplicaIDs[1])

	// Drive well past several checkpoint windows (window=8, 30 requests).
	for i := 0; i < 30; i++ {
		key := []byte(fmt.Sprintf("k%02d", i))
		res, _ := u.InvokeSync(0, app.EncodeKVSet(key, []byte("v")), 100*sim.Millisecond)
		if res == nil {
			t.Fatalf("request %d stalled with one partitioned follower", i)
		}
	}
	if got := u.Replicas[2].LastApplied(); got != 0 {
		t.Fatalf("partitioned replica applied %d slots", got)
	}

	// Heal and give retransmission, summaries, checkpoints and state
	// transfer time to work.
	u.Net.HealAll()
	u.Eng.RunFor(200 * sim.Millisecond)
	// Fresh traffic accelerates dissemination of the latest checkpoint.
	for i := 30; i < 34; i++ {
		key := []byte(fmt.Sprintf("k%02d", i))
		u.InvokeSync(0, app.EncodeKVSet(key, []byte("v")), 100*sim.Millisecond)
	}
	u.Eng.RunFor(200 * sim.Millisecond)

	lag := u.Replicas[2].LastApplied()
	if lag < 24 {
		t.Fatalf("lagging replica only reached slot %d (no state transfer?)", lag)
	}
	// Its state must equal another replica's at the same progress point —
	// and since KV state is cumulative, spot-check the early keys arrived
	// via snapshot even though their slots were pruned.
	kv := app.NewKV(0)
	kv.Restore(u.Apps[2].Snapshot())
	if kv.Len() < 24 {
		t.Fatalf("restored replica has %d keys, want >=24", kv.Len())
	}
	if u.Replicas[0].LastApplied() == u.Replicas[2].LastApplied() &&
		!bytes.Equal(u.Apps[0].Snapshot(), u.Apps[2].Snapshot()) {
		t.Fatal("state transfer produced divergent state")
	}
}
