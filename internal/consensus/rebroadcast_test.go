package consensus

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/xcrypto"
)

// TestShouldRebroadcastExecInversion pins down the view-change re-routing
// predicate, in particular the echo-ordering inversion: a client's later
// request can execute before an earlier one (their echoes completed in
// opposite order), leaving the earlier request in reqStore, unexecuted,
// while the client's exec high-water mark has already moved past its
// number. Keying the "already executed" test off the monotone high-water
// mark labels that victim settled, a view change at that moment skips its
// one rebroadcast, and the client wedges until retransmission — the
// predicate must match the executed number exactly.
func TestShouldRebroadcastExecInversion(t *testing.T) {
	r := &Replica{
		proposed: make(map[[xcrypto.DigestLen]byte]Slot),
		decided:  make(map[Slot]Request),
		exec:     make(map[ids.ID]execEntry),
	}
	client := ids.ID(200001)
	req := Request{Client: client, Num: 5, Payload: []byte("x")}
	var dg [xcrypto.DigestLen]byte

	if !r.shouldRebroadcast(dg, req) {
		t.Fatal("unproposed, unexecuted request not re-routed")
	}

	// The inversion: num 7 executed, num 5 never did.
	r.exec[client] = execEntry{num: 7}
	if !r.shouldRebroadcast(dg, req) {
		t.Fatal("inversion victim labelled settled by the exec high-water mark")
	}

	// This exact request executed (reqStore entries of executed requests
	// are normally deleted; a retransmission can race one back in).
	r.exec[client] = execEntry{num: 5}
	if r.shouldRebroadcast(dg, req) {
		t.Fatal("executed request re-routed")
	}

	// Proposed but undecided: the new leader may never decide the old
	// slot (mustPropose fills unknown open slots with NoOps), so the
	// request must be re-routed as fresh work.
	r.exec[client] = execEntry{num: 7}
	r.proposed[dg] = 12
	if !r.shouldRebroadcast(dg, req) {
		t.Fatal("undecided proposal not re-routed")
	}

	// Decided: settled regardless of execution progress.
	r.decided[12] = req
	if r.shouldRebroadcast(dg, req) {
		t.Fatal("decided request re-routed")
	}

	// Below the stable checkpoint the decided entry is pruned, but the
	// checkpoint itself proves the slot decided.
	delete(r.decided, 12)
	r.chkpt.Seq = 20
	if r.shouldRebroadcast(dg, req) {
		t.Fatal("checkpointed request re-routed")
	}

	if r.shouldRebroadcast(dg, Request{Client: ids.None}) {
		t.Fatal("NoOp re-routed")
	}
}
