package consensus

// Fuzz targets for the adversarial read wire surface: a Byzantine peer
// controls every byte of ChanRPC traffic (the channel carries no checksum
// and no signature by design — the quorum rules are the defense), so the
// decoders on both ends must shrug off arbitrary bytes. The client-side
// target additionally pins the harness's core invariant down at the unit
// level: ONE hostile reply — any bytes, any tag, any claimed version — can
// never ratchet the monotonic read floor, because ratcheting requires an
// f+1 class and a lone liar can contribute at most one vote.

import (
	"fmt"
	"testing"

	"repro/internal/ids"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// clientFuzzRig wires one client against three sink replica nodes (frames
// are routed but nothing answers), with one ordered request and one fast
// read already pending so hostile replies can reach the tally paths.
func clientFuzzRig(t *testing.T) *Client {
	t.Helper()
	eng := sim.NewEngine(1)
	net := simnet.New(eng, simnet.RDMAOptions())
	repIDs := []ids.ID{0, 1, 2}
	for _, id := range repIDs {
		router.New(net.AddNode(id, fmt.Sprintf("sink%d", id)))
	}
	crt := router.New(net.AddNode(ids.ID(200), "client"))
	c := NewClient(crt, repIDs, 1)
	c.InvokeGroup(0, []byte("w"), func([]byte, sim.Duration) {})           // num 1
	c.InvokeGroupRead(0, []byte("r"), func([]byte, sim.Duration) {})       // num 2
	c.InvokeGroupReadStrong(0, []byte("s"), func([]byte, sim.Duration) {}) // num 3
	return c
}

// encodeReply builds a well-formed tag-31/33 frame — the seed corpus, so
// the fuzzer starts from frames that reach deep into the tally logic
// (matching nums, served flags, huge versions) instead of bouncing off the
// truncation checks.
func encodeReply(tag uint8, num, version uint64, flags uint8, result []byte) []byte {
	w := wire.NewWriter(64)
	w.U8(tag)
	w.U64(num)
	w.U64(version)
	w.U8(flags)
	w.Bytes(result)
	return w.Finish()
}

// FuzzClientReadReply delivers one attacker-controlled ChanRPC frame to a
// client with pending ordered and read requests. Must never panic, and the
// read floor must stay exactly 0: no single reply completes an f+1 class,
// so nothing a lone Byzantine replica sends may move it.
func FuzzClientReadReply(f *testing.F) {
	f.Add(uint8(0), encodeReply(tagResponse, 1, 7, 0, []byte("ok")))
	f.Add(uint8(1), encodeReply(tagResponse, 1, 1<<40, respFlagParked, []byte{5}))
	f.Add(uint8(2), encodeReply(tagReadResponse, 2, 1<<40, readFlagServed, []byte("forged")))
	f.Add(uint8(0), encodeReply(tagReadResponse, 2, 9, readFlagServed|readFlagCrossed, nil))
	f.Add(uint8(1), encodeReply(tagReadResponse, 2, 3, 0, nil)) // refusal
	f.Add(uint8(2), encodeReply(tagReadResponse, 3, 1<<62, readFlagServed, []byte("strong-forge")))
	f.Add(uint8(0), []byte{tagReadResponse, 0x02}) // truncated
	f.Add(uint8(1), []byte{tagResponse})           // tag only
	f.Add(uint8(2), []byte{})                      // empty
	f.Fuzz(func(t *testing.T, fromSel uint8, data []byte) {
		c := clientFuzzRig(t)
		c.onRPC(ids.ID(fromSel%3), data)
		if got := c.ReadFloor(0); got != 0 {
			t.Fatalf("one hostile reply inflated the read floor to %d", got)
		}
	})
}

// FuzzReplicaReadRequest delivers one attacker-controlled ChanRPC frame to
// a live replica (tag-30 ordered submissions and tag-32 fast reads share
// the channel). Must never panic — including pins far past execution,
// which park bounded and time out, never trusting the claimed version.
func FuzzReplicaReadRequest(f *testing.F) {
	readReq := func(num, at uint64, payload []byte) []byte {
		w := wire.NewWriter(64)
		w.U8(tagReadRequest)
		w.U64(num)
		w.U64(at)
		w.Bytes(payload)
		return w.Finish()
	}
	f.Add(readReq(1, 0, []byte{0}))
	f.Add(readReq(2, 1<<40, []byte("pin-the-future")))
	f.Add(readReq(3, 0, nil))
	f.Add([]byte{tagReadRequest, 0x01})
	f.Add([]byte{tagRequest, 0xff, 0xff})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rig := newWBRig(t)
		defer rig.stop()
		router.New(rig.net.AddNode(ids.ID(200), "client-sink"))
		rig.reps[0].onRPC(ids.ID(200), data)
		rig.eng.RunFor(time200us())
	})
}

// time200us keeps the fuzz body free of literal sim arithmetic noise.
func time200us() sim.Duration { return 200 * sim.Microsecond }
