package consensus

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/ids"
	"repro/internal/wire"
	"repro/internal/xcrypto"
)

func TestRequestRoundTrip(t *testing.T) {
	req := Request{Client: 200, Num: 42, Payload: []byte("payload")}
	got, err := DecodeRequest(EncodeRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if got.Client != req.Client || got.Num != req.Num || !bytes.Equal(got.Payload, req.Payload) {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestNoOpRequest(t *testing.T) {
	n := NoOp()
	if !n.IsNoOp() {
		t.Fatal("NoOp not recognized")
	}
	if (Request{Client: 5}).IsNoOp() {
		t.Fatal("real request flagged as noop")
	}
	got, err := DecodeRequest(EncodeRequest(n))
	if err != nil || !got.IsNoOp() {
		t.Fatalf("noop round trip: %+v %v", got, err)
	}
}

func TestRequestDigestBindsAllFields(t *testing.T) {
	base := Request{Client: 1, Num: 2, Payload: []byte("p")}
	same := Request{Client: 1, Num: 2, Payload: []byte("p")}
	if base.Digest() != same.Digest() {
		t.Fatal("digest not deterministic")
	}
	for _, other := range []Request{
		{Client: 2, Num: 2, Payload: []byte("p")},
		{Client: 1, Num: 3, Payload: []byte("p")},
		{Client: 1, Num: 2, Payload: []byte("q")},
	} {
		if base.Digest() == other.Digest() {
			t.Fatalf("digest collision with %+v", other)
		}
	}
}

func TestPrepareRoundTrip(t *testing.T) {
	p := Prepare{View: 3, Slot: 77, Req: Request{Client: 9, Num: 1, Payload: []byte("x")}}
	rd := wire.NewReader(encodePrepare(p))
	if rd.U8() != tagPrepare {
		t.Fatal("tag wrong")
	}
	got, err := decodePrepare(rd)
	if err != nil || rd.Done() != nil {
		t.Fatalf("decode: %v %v", err, rd.Done())
	}
	if got.View != 3 || got.Slot != 77 || got.Req.Client != 9 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestCommitCertRoundTrip(t *testing.T) {
	c := CommitCert{
		View: 1, Slot: 5,
		Req: Request{Client: 9, Num: 2, Payload: []byte("req")},
		Sigs: map[ids.ID]xcrypto.Signature{
			0: bytes.Repeat([]byte{1}, xcrypto.SigLen),
			2: bytes.Repeat([]byte{2}, xcrypto.SigLen),
		},
	}
	w := wire.NewWriter(256)
	c.encode(w)
	got, err := decodeCommitCert(wire.NewReader(w.Finish()))
	if err != nil {
		t.Fatal(err)
	}
	if got.View != 1 || got.Slot != 5 || len(got.Sigs) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	if !bytes.Equal(got.Sigs[2], c.Sigs[2]) {
		t.Fatal("sigs lost")
	}
}

func TestCheckpointRoundTripAndSupersedes(t *testing.T) {
	cp := Checkpoint{Seq: 256}
	copy(cp.StateDigest[:], bytes.Repeat([]byte{7}, xcrypto.DigestLen))
	cp.Sigs = map[ids.ID]xcrypto.Signature{1: bytes.Repeat([]byte{9}, xcrypto.SigLen)}
	w := wire.NewWriter(128)
	cp.encode(w)
	got, err := decodeCheckpoint(wire.NewReader(w.Finish()))
	if err != nil || got.Seq != 256 || got.StateDigest != cp.StateDigest {
		t.Fatalf("round trip: %+v %v", got, err)
	}
	older := Checkpoint{Seq: 128}
	if !cp.Supersedes(&older) || older.Supersedes(&cp) || cp.Supersedes(&cp) {
		t.Fatal("Supersedes wrong")
	}
}

func TestCertifiedStateRoundTrip(t *testing.T) {
	cs := CertifiedState{
		View:       4,
		Checkpoint: Checkpoint{Seq: 100},
		Commits: map[Slot]CommitCert{
			101: {View: 4, Slot: 101, Req: Request{Client: 1, Num: 1}},
			105: {View: 3, Slot: 105, Req: NoOp()},
		},
	}
	got, err := decodeCertifiedState(encodeCertifiedState(&cs))
	if err != nil {
		t.Fatal(err)
	}
	if got.View != 4 || len(got.Commits) != 2 || got.Commits[105].View != 3 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestCertifiedStateEncodingDeterministic(t *testing.T) {
	// The summary/view-change machinery relies on byte-equal encodings
	// across replicas; map iteration order must not leak in.
	cs := CertifiedState{
		View:       1,
		Checkpoint: Checkpoint{Seq: 0, Sigs: map[ids.ID]xcrypto.Signature{2: {1}, 0: {2}, 1: {3}}},
		Commits:    map[Slot]CommitCert{},
	}
	for s := Slot(0); s < 20; s++ {
		cs.Commits[s] = CommitCert{Slot: s, Req: NoOp(),
			Sigs: map[ids.ID]xcrypto.Signature{1: {byte(s)}, 0: {byte(s + 1)}}}
	}
	a := encodeCertifiedState(&cs)
	for i := 0; i < 10; i++ {
		if !bytes.Equal(a, encodeCertifiedState(&cs)) {
			t.Fatal("encoding depends on map iteration order")
		}
	}
}

func TestNewViewRoundTrip(t *testing.T) {
	nv := NewViewMsg{
		View: 2,
		Certs: []ReplicaCert{
			{About: 0, StateBytes: []byte("s0"), Sigs: map[ids.ID]xcrypto.Signature{1: {1}}},
			{About: 1, StateBytes: []byte("s1"), Sigs: map[ids.ID]xcrypto.Signature{2: {2}}},
		},
	}
	rd := wire.NewReader(encodeNewView(nv))
	if rd.U8() != tagNewView {
		t.Fatal("tag wrong")
	}
	got, err := decodeNewView(rd)
	if err != nil || rd.Done() != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.View != 2 || len(got.Certs) != 2 || got.Certs[1].About != 1 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestNewViewFragRoundTrip(t *testing.T) {
	f := nvFrag{view: 3, idx: 1, total: 4, chunk: []byte("chunk-bytes")}
	rd := wire.NewReader(encodeNewViewFrag(f))
	if rd.U8() != tagNewViewFrag {
		t.Fatal("tag wrong")
	}
	got, err := decodeNewViewFrag(rd)
	if err != nil || rd.Done() != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.view != 3 || got.idx != 1 || got.total != 4 || !bytes.Equal(got.chunk, f.chunk) {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestNewViewFragRejectsMalformed(t *testing.T) {
	bad := []nvFrag{
		{view: 1, idx: 0, total: 1, chunk: []byte("x")}, // 1-chunk train: must be monolithic
		{view: 1, idx: 4, total: 4, chunk: []byte("x")}, // idx out of range
		{view: 1, idx: 0, total: 2, chunk: nil},         // empty chunk
	}
	for i, f := range bad {
		rd := wire.NewReader(encodeNewViewFrag(f))
		rd.U8()
		if _, err := decodeNewViewFrag(rd); err == nil {
			t.Errorf("case %d: malformed fragment %+v decoded without error", i, f)
		}
	}
}

func TestDecodersRejectGarbage(t *testing.T) {
	prop := func(garbage []byte) bool {
		// None of these may panic; errors are fine.
		rd := wire.NewReader(garbage)
		_, _ = decodePrepare(rd)
		_, _ = decodeCommitCert(wire.NewReader(garbage))
		_, _ = decodeCheckpoint(wire.NewReader(garbage))
		_, _ = decodeCertifiedState(garbage)
		rd2 := wire.NewReader(garbage)
		_, _ = decodeNewView(rd2)
		_, _ = decodeNewViewFrag(wire.NewReader(garbage))
		_, _ = DecodeRequest(garbage)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOversizedCertificatesRejected(t *testing.T) {
	// A Byzantine replica cannot make us allocate unbounded memory via a
	// huge signature count.
	w := wire.NewWriter(64)
	w.U64(0) // view
	w.U64(0) // slot
	NoOp().encode(w)
	w.Uvarint(1 << 20) // absurd signature count
	if _, err := decodeCommitCert(wire.NewReader(w.Finish())); err == nil {
		t.Fatal("oversized commit cert accepted")
	}
}
