package consensus

import (
	"math/bits"

	"repro/internal/app"
	"repro/internal/ids"
	"repro/internal/latmodel"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/wire"
	"repro/internal/xcrypto"
)

// This file implements uBFT's RPC layer (§5.4 and Figure 4's Echo round):
// clients send UNSIGNED requests to all replicas (no client signatures on
// the fast path); followers echo each request to the leader so the leader
// knows everyone holds it before proposing; replicas respond after
// execution and the client accepts a result once f+1 replicas agree.
//
// It also implements the unordered read fast path (the classic PBFT-style
// read-only optimization): a read-only request goes to all 2f+1 replicas
// of a group, each executes it tentatively against its last-applied state
// — off the ordering path, but still charging ExecCost so the proc model
// stays honest — and replies with the result plus the state version it was
// read at. The client accepts once f+1 replies carry matching digests at a
// compatible (monotonic per client per group) version, and falls back to
// the ordered path on mismatch, timeout, refusal, or a locked key.

const (
	tagEcho         uint8 = 23
	tagRequest      uint8 = 30
	tagResponse     uint8 = 31
	tagReadRequest  uint8 = 32
	tagReadResponse uint8 = 33
)

// onRPC handles client traffic arriving at a replica.
func (r *Replica) onRPC(from ids.ID, payload []byte) {
	if r.stopped {
		return
	}
	rd := wire.NewReader(payload)
	switch rd.U8() {
	case tagRequest:
		r.onClientRequest(from, rd)
	case tagReadRequest:
		r.onReadRequest(from, rd)
	}
}

// onClientRequest handles an ordered (write-path) client request.
func (r *Replica) onClientRequest(from ids.ID, rd *wire.Reader) {
	req := decodeRequest(rd)
	if rd.Done() != nil || req.IsNoOp() {
		return
	}
	if req.Client != from {
		return // authenticated links: a client cannot impersonate another
	}
	if e, ok := r.exec[req.Client]; ok && e.num >= req.Num {
		// Retransmission of an executed request: re-send the cached result.
		// Only the most recent request's result is cached; a parked
		// request's response arrives when the blocking transaction
		// resolves, and older requests were answered at execution — never
		// re-send another request's bytes for them.
		if e.num == req.Num && !e.pending {
			// Re-send with the original execution slot: the client's f+1
			// match covers (result, slot), so a retransmission must land
			// in the same class as the first-execution responses.
			r.respond(req.Client, req.Num, e.slot, e.res)
		} else {
			r.droppedExecOld++
		}
		return
	}
	dg := req.Digest()
	r.proc.Charge(latmodel.DigestCost(len(req.Payload)))
	if _, dup := r.reqStore[dg]; dup {
		return
	}
	r.reqStore[dg] = req

	// Unblock any PREPARE waiting for this request's endorsement (batch
	// containers become endorsable once their last sub-request arrives).
	for _, ss := range r.slots {
		if ss.waitingReq != nil && r.requestKnown(ss.waitingReq.Req) {
			r.endorse(*ss.waitingReq)
		}
	}

	if r.IsLeader() {
		r.noteEcho(dg, r.cfg.Self)
	} else {
		// Echo toward the leader (Fig 4, "Echo Req").
		r.sendEcho(dg)
	}
	r.armProgressTimer()
}

// onReadRequest serves the unordered read fast path: execute the read
// tentatively against this replica's last-applied state and reply with the
// result and the state version (LastApplied) it was read at. The read
// never touches the ordering pipeline — no digest, no echo, no slot — but
// its execution is charged like any ordered execution. Requests the
// application cannot answer read-only (no ReadExecutor capability, or a
// write opcode) are refused explicitly so the client falls back without
// waiting out its timeout.
func (r *Replica) onReadRequest(from ids.ID, rd *wire.Reader) {
	num := rd.U64()
	payload := rd.BytesView()
	if rd.Done() != nil {
		return
	}
	var result []byte
	served := false
	if re, ok := r.cfg.App.(app.ReadExecutor); ok {
		if res, readable := re.ApplyRead(payload); readable {
			r.proc.Charge(r.cfg.App.ExecCost(payload) + latmodel.AppExecBase)
			result, served = res, true
			r.ReadsServed++
		}
	}
	w := wire.GetWriter(32 + len(result))
	w.U8(tagReadResponse)
	w.U64(num)
	w.U64(uint64(r.lastApplied))
	w.Bool(served)
	w.Bytes(result)
	r.rt.Send(from, router.ChanRPC, w.Finish())
	wire.PutWriter(w)
}

// sendEcho sends one digest echo to the leader through a pooled buffer
// (router.Send copies the frame before returning).
func (r *Replica) sendEcho(dg [xcrypto.DigestLen]byte) {
	w := wire.GetWriter(48)
	w.U8(tagEcho)
	w.Raw(dg[:])
	r.rt.Send(r.cfg.leaderOf(r.view), router.ChanDirect, w.Finish())
	wire.PutWriter(w)
}

// onEcho records a follower's echo at the leader.
func (r *Replica) onEcho(from ids.ID, rd *wire.Reader) {
	var dg [xcrypto.DigestLen]byte
	copy(dg[:], rd.Raw(xcrypto.DigestLen))
	if rd.Done() != nil || r.cfg.indexOf(from) < 0 {
		return
	}
	r.noteEcho(dg, from)
}

// noteEcho tracks who holds the request; the leader proposes once every
// follower echoed, or after EchoTimeout (a Byzantine client that sent its
// request to only some replicas cannot stall the system, §5.4).
func (r *Replica) noteEcho(dg [xcrypto.DigestLen]byte, from ids.ID) {
	if !r.IsLeader() {
		return
	}
	if _, done := r.proposed[dg]; done {
		return
	}
	if r.echoes[dg] == nil {
		r.echoes[dg] = make(map[ids.ID]bool)
	}
	r.echoes[dg][from] = true
	req, haveReq := r.reqStore[dg]
	if !haveReq {
		return // echo arrived before the client's own copy
	}
	if r.cfg.EchoTimeout <= 0 || len(r.echoes[dg]) == r.cfg.n() {
		r.finishEcho(dg, req)
		return
	}
	if _, armed := r.echoTimers[dg]; !armed {
		r.echoTimers[dg] = r.proc.After(r.cfg.EchoTimeout, func() {
			if req, ok := r.reqStore[dg]; ok {
				r.finishEcho(dg, req)
			}
		})
	}
}

func (r *Replica) finishEcho(dg [xcrypto.DigestLen]byte, req Request) {
	if t, ok := r.echoTimers[dg]; ok {
		t.Cancel()
		delete(r.echoTimers, dg)
	}
	delete(r.echoes, dg)
	delete(r.echoGrace, dg)
	r.enqueueProposal(req)
}

// rebroadcastPending re-routes known-but-unexecuted client requests after a
// view change: followers echo them to the new leader, the new leader
// enqueues its own copies. Without this, requests echoed to a crashed
// leader would be lost until the client retransmits.
func (r *Replica) rebroadcastPending() {
	for dg, req := range r.reqStore {
		if _, done := r.proposed[dg]; done || req.IsNoOp() || r.executedReq(req) {
			continue
		}
		if r.IsLeader() {
			r.noteEcho(dg, r.cfg.Self)
		} else {
			r.sendEcho(dg)
		}
	}
}

// respond sends an execution result back to the client.
func (r *Replica) respond(client ids.ID, reqNum uint64, slot Slot, result []byte) {
	w := wire.GetWriter(32 + len(result))
	w.U8(tagResponse)
	w.U64(reqNum)
	w.U64(uint64(slot))
	w.Bytes(result)
	r.rt.Send(client, router.ChanRPC, w.Finish())
	wire.PutWriter(w)
}

// Client is a uBFT client: it fires unsigned requests at every replica of
// the target consensus group and accepts a result confirmed by f+1 of them.
// A client may address several independent groups (the sharded deployment):
// all groups share one request-number sequence, so each group sees a
// strictly increasing subsequence of numbers.
type Client struct {
	rt     *router.Router
	proc   *sim.Proc
	groups [][]ids.ID
	f      int

	nextNum uint64
	pending map[uint64]*pendingReq

	// Read fast path state: in-flight unordered reads, the per-group
	// monotonic read floor (the lowest state version a fast read may be
	// answered at — ratcheted by every accepted read AND every ordered
	// response, which is what gives one client monotonic reads and
	// read-your-writes across the two paths), and the quorum timeout.
	pendingReads map[uint64]*pendingRead
	readFloor    []Slot
	readTimeout  sim.Duration

	// Read fast path stats.
	FastReads     uint64 // reads answered by an f+1 unordered quorum
	ReadFallbacks uint64 // reads that fell back to the ordered path
}

// resTally accumulates one result class of a pending request: the vote
// count, the result bytes, and the LOWEST slot/version the class reported.
//
// On the ordered path the class key covers (result, slot) together —
// correct replicas are deterministic state machines that execute a request
// at one agreed slot, so they all land in one class, while a replica lying
// about either the result or the slot forms its own class that can never
// reach f+1 without f+1 colluders. The winning class's slot is therefore
// quorum-vouched in full: it can neither be inflated (which would poison
// the read floor and permanently deny the fast-read path) nor deflated
// (which would quietly weaken read-your-writes).
//
// On the read path versions stay OUTSIDE the class key — the whole point
// is accepting the same value read at different versions — and the floor
// ratchets from the class minimum, which is bounded below by the read's
// own floor (stale replies are never counted), so a lone Byzantine replica
// can at worst keep the floor where it already was.
type resTally struct {
	count   int
	result  []byte
	minSlot Slot
}

func (t *resTally) add(result []byte, slot Slot) {
	t.count++
	t.result = result
	if t.count == 1 || slot < t.minSlot {
		t.minSlot = slot
	}
}

type pendingReq struct {
	group   int
	started sim.Time
	replied uint64              // bitmask of replica indices already counted
	byRes   map[uint64]resTally // result checksum -> class tally
	done    func(result []byte, latency sim.Duration)
	fired   bool
}

// pendingRead tracks one in-flight unordered read.
type pendingRead struct {
	group   int
	payload []byte
	minSlot Slot
	started sim.Time
	replied uint64 // bitmask of replica indices already counted
	// byRes tallies fresh (version >= minSlot) replies per result digest;
	// the class minimum version is the quorum-vouched ratchet (see
	// resTally), bounded below by the floor since stale replies are never
	// counted at all.
	byRes map[uint64]resTally
	// frontier is the highest version ANY reply carried — advisory input
	// to the scatter-gather snapshot negotiation only (a forged frontier
	// costs at most snapRetryMax futile retries before the ordered
	// fallback); it never ratchets the persistent floor.
	frontier Slot
	refused  int
	fellBack bool
	ordNum   uint64 // the ordered request number after fallback
	timer    sim.Timer
	done     func(result []byte, slot, frontier Slot, fellBack bool, latency sim.Duration)
}

// defaultReadTimeout bounds how long a fast read waits for its f+1 quorum
// before falling back to the ordered path. Generous against queueing at
// saturation (a fast read round trip is tens of microseconds), small
// against the fallback's own consensus latency.
const defaultReadTimeout = 500 * sim.Microsecond

// NewClient wires a single-group client onto its host router.
func NewClient(rt *router.Router, replicas []ids.ID, f int) *Client {
	return NewMultiClient(rt, [][]ids.ID{replicas}, f)
}

// NewMultiClient wires a client that can invoke any of several replica
// groups (all with the same fault threshold f) through one router. The
// shard layer uses this to reach every consensus group from one host.
func NewMultiClient(rt *router.Router, groups [][]ids.ID, f int) *Client {
	if len(groups) == 0 {
		panic("consensus: client needs at least one replica group")
	}
	c := &Client{
		rt:           rt,
		proc:         rt.Node().Proc(),
		groups:       groups,
		f:            f,
		pending:      make(map[uint64]*pendingReq),
		pendingReads: make(map[uint64]*pendingRead),
		readFloor:    make([]Slot, len(groups)),
		readTimeout:  defaultReadTimeout,
	}
	rt.Register(router.ChanRPC, c.onRPC)
	return c
}

// SetReadTimeout overrides how long a fast read waits for its f+1 quorum
// before falling back to the ordered path (default 500us of virtual time).
func (c *Client) SetReadTimeout(d sim.Duration) {
	if d > 0 {
		c.readTimeout = d
	}
}

// Groups returns how many replica groups this client can address.
func (c *Client) Groups() int { return len(c.groups) }

// Invoke submits payload to group 0 for replicated execution; done receives
// the f+1-confirmed result and the end-to-end latency.
func (c *Client) Invoke(payload []byte, done func(result []byte, latency sim.Duration)) uint64 {
	return c.InvokeGroup(0, payload, done)
}

// InvokeGroup submits payload to the given replica group. The returned
// request number is a per-group completion handle: Cancel(num) abandons the
// request (its done callback will never fire), which is how the cross-shard
// coordinator withdraws prepares from a group that timed out.
func (c *Client) InvokeGroup(group int, payload []byte, done func(result []byte, latency sim.Duration)) uint64 {
	c.nextNum++
	num := c.nextNum
	c.pending[num] = &pendingReq{
		group:   group,
		started: c.proc.Now(),
		byRes:   make(map[uint64]resTally),
		done:    done,
	}
	req := Request{Client: c.rt.ID(), Num: num, Payload: payload}
	w := wire.GetWriter(32 + len(payload))
	w.U8(tagRequest)
	req.encode(w)
	frame := w.Finish()
	for _, rep := range c.groups[group] {
		c.rt.Send(rep, router.ChanRPC, frame)
	}
	wire.PutWriter(w)
	return num
}

// Cancel abandons a pending request: late replica responses are ignored and
// the done callback never fires. It reports whether the request was still
// pending. The request itself may still be (or become) decided and executed
// by the group — Cancel gives up on observing the outcome, it cannot recall
// the submission. Cancelling a fast read also abandons its ordered
// fallback, if one is in flight.
func (c *Client) Cancel(num uint64) bool {
	if p, ok := c.pendingReads[num]; ok {
		delete(c.pendingReads, num)
		p.timer.Cancel()
		if p.fellBack {
			delete(c.pending, p.ordNum)
		}
		return true
	}
	if _, ok := c.pending[num]; !ok {
		return false
	}
	delete(c.pending, num)
	return true
}

// PendingCount reports how many requests await confirmation, ordered and
// fast-read alike (bounded-memory diagnostics: abandoned requests must not
// accumulate here). A read in its fallback phase counts twice — once for
// the read handle, once for the inner ordered request — until it resolves.
func (c *Client) PendingCount() int { return len(c.pending) + len(c.pendingReads) }

func (c *Client) onRPC(from ids.ID, payload []byte) {
	rd := wire.NewReader(payload)
	switch rd.U8() {
	case tagResponse:
		c.onResponse(from, rd)
	case tagReadResponse:
		c.onReadResponse(from, rd)
	}
}

func (c *Client) onResponse(from ids.ID, rd *wire.Reader) {
	num := rd.U64()
	slot := Slot(rd.U64())
	result := rd.Bytes()
	if rd.Done() != nil {
		return
	}
	p := c.pending[num]
	if p == nil || p.fired {
		return
	}
	idx := c.replicaIndex(from, p.group)
	if idx < 0 {
		return // response from outside the group this request went to
	}
	bit := uint64(1) << uint(idx)
	if p.replied&bit != 0 {
		return // one response per replica counts toward the quorum
	}
	p.replied |= bit
	// The class key mixes the slot into the result checksum so the f+1
	// match covers both (see resTally).
	key := xcrypto.ChecksumNoCharge(result) + uint64(slot)*0x9E3779B97F4A7C15
	t := p.byRes[key]
	t.add(result, slot)
	p.byRes[key] = t
	if t.count >= c.f+1 {
		p.fired = true
		delete(c.pending, num)
		// The request executed at the slot the winning class vouches for
		// (its minimum — see resTally), so the group's state now includes
		// it: ratchet the read floor so a later fast read by this client
		// can never observe a version that predates this response
		// (read-your-writes and monotonic reads across both paths).
		c.noteVersion(p.group, t.minSlot+1)
		p.done(result, c.proc.Now().Sub(p.started))
	}
}

func (c *Client) replicaIndex(id ids.ID, group int) int {
	for i, r := range c.groups[group] {
		if r == id {
			return i
		}
	}
	return -1
}

// noteVersion ratchets the per-group monotonic read floor.
func (c *Client) noteVersion(group int, v Slot) {
	if v > c.readFloor[group] {
		c.readFloor[group] = v
	}
}

// ---------------------------------------------------------------------
// Unordered read fast path (client side).
// ---------------------------------------------------------------------

// InvokeRead submits a read-only request to group 0's unordered fast path:
// one round trip to all 2f+1 replicas, accepted on f+1 matching result
// digests at a compatible state version, with a transparent fallback to
// the ordered Invoke path on mismatch, timeout, refusal or a
// transaction-locked key. done always fires exactly once with the final
// result and the end-to-end latency (fallback included).
func (c *Client) InvokeRead(payload []byte, done func(result []byte, latency sim.Duration)) uint64 {
	return c.InvokeGroupRead(0, payload, done)
}

// InvokeGroupRead is InvokeRead addressed at one replica group.
func (c *Client) InvokeGroupRead(group int, payload []byte, done func(result []byte, latency sim.Duration)) uint64 {
	return c.InvokeGroupReadAt(group, payload, 0, func(res []byte, _, _ Slot, _ bool, lat sim.Duration) {
		done(res, lat)
	})
}

// InvokeGroupReadAt is the slot-aware fast read the shard layer's
// snapshot-consistent scatter-gather builds on: only replies at state
// version >= minSlot (and >= this client's monotonic floor for the group)
// count toward the quorum, and done additionally receives the version the
// accepted result was read at, the group frontier — the highest version
// ANY reply revealed, which the caller uses as the group's snapshot slot
// when negotiating a consistent multi-group read — and whether the read
// resolved through the ordered fallback, the signal the scatter layer's
// revalidation round keys on. EVERY fallback reports true: a fallback
// from plain loss or timeout may still have parked server-side behind a
// transaction (the client cannot tell a parked ordered read from a slow
// one without a wire marker — a ROADMAP optimization), and a sibling leg
// may predate that transaction, so all fallbacks must be treated as
// potentially lock-crossing.
func (c *Client) InvokeGroupReadAt(group int, payload []byte, minSlot Slot, done func(result []byte, slot, frontier Slot, fellBack bool, latency sim.Duration)) uint64 {
	c.nextNum++
	num := c.nextNum
	if f := c.readFloor[group]; f > minSlot {
		minSlot = f
	}
	p := &pendingRead{
		group:   group,
		payload: payload,
		minSlot: minSlot,
		started: c.proc.Now(),
		byRes:   make(map[uint64]resTally),
		done:    done,
	}
	c.pendingReads[num] = p
	w := wire.GetWriter(32 + len(payload))
	w.U8(tagReadRequest)
	w.U64(num)
	w.Bytes(payload)
	frame := w.Finish()
	for _, rep := range c.groups[group] {
		c.rt.Send(rep, router.ChanRPC, frame)
	}
	wire.PutWriter(w)
	p.timer = c.proc.After(c.readTimeout, func() { c.readFallback(num, p) })
	return num
}

// onReadResponse collects one replica's fast-read reply. Acceptance needs
// f+1 replies carrying the same result digest at versions >= the read's
// floor; a full round without acceptance (digest mismatch, stale replicas,
// f+1 refusals) or an accepted-but-locked result falls back to the ordered
// path.
func (c *Client) onReadResponse(from ids.ID, rd *wire.Reader) {
	num := rd.U64()
	version := Slot(rd.U64())
	served := rd.Bool()
	result := rd.Bytes()
	if rd.Done() != nil {
		return
	}
	p := c.pendingReads[num]
	if p == nil || p.fellBack {
		return
	}
	idx := c.replicaIndex(from, p.group)
	if idx < 0 {
		return
	}
	bit := uint64(1) << uint(idx)
	if p.replied&bit != 0 {
		return // one reply per replica counts
	}
	p.replied |= bit
	if version > p.frontier {
		p.frontier = version
	}
	if !served {
		p.refused++
		if p.refused >= c.f+1 {
			// At least one correct replica refuses, and refusal is a
			// deterministic property of the request: no quorum will form.
			c.readFallback(num, p)
			return
		}
	} else if version >= p.minSlot {
		key := app.ReadDigest(result)
		t := p.byRes[key]
		t.add(result, version)
		p.byRes[key] = t
		if t.count >= c.f+1 {
			if len(t.result) == 1 && t.result[0] == app.StatusLocked {
				// A transaction holds the keys: always fall back — the
				// ordered path parks behind the lock and answers when the
				// transaction resolves (the wait-queue semantics readers
				// rely on for isolation).
				c.readFallback(num, p)
				return
			}
			p.timer.Cancel()
			delete(c.pendingReads, num)
			c.FastReads++
			c.noteVersion(p.group, t.minSlot)
			p.done(t.result, t.minSlot, p.frontier, false, c.proc.Now().Sub(p.started))
			return
		}
	}
	if bits.OnesCount64(p.replied) == len(c.groups[p.group]) {
		// Every replica replied and no compatible quorum formed.
		c.readFallback(num, p)
	}
}

// readFallback re-submits a fast read through the ordered path. The
// ordered result is always correct (it is the exact path a deployment
// without fast reads runs), so this is the safety net every fast-read
// failure mode lands on.
func (c *Client) readFallback(num uint64, p *pendingRead) {
	if p.fellBack || c.pendingReads[num] != p {
		return
	}
	p.fellBack = true
	p.timer.Cancel()
	c.ReadFallbacks++
	p.ordNum = c.InvokeGroup(p.group, p.payload, func(result []byte, _ sim.Duration) {
		delete(c.pendingReads, num)
		// The ordered execution ratcheted the floor already; report it as
		// both slot and frontier so a scatter-gather caller never retries
		// an ordered leg.
		v := c.readFloor[p.group]
		if p.frontier > v {
			v = p.frontier
		}
		p.done(result, v, v, true, c.proc.Now().Sub(p.started))
	})
}
