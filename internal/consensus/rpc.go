package consensus

import (
	"repro/internal/ids"
	"repro/internal/latmodel"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/wire"
	"repro/internal/xcrypto"
)

// This file implements uBFT's RPC layer (§5.4 and Figure 4's Echo round):
// clients send UNSIGNED requests to all replicas (no client signatures on
// the fast path); followers echo each request to the leader so the leader
// knows everyone holds it before proposing; replicas respond after
// execution and the client accepts a result once f+1 replicas agree.

const (
	tagEcho     uint8 = 23
	tagRequest  uint8 = 30
	tagResponse uint8 = 31
)

// onRPC handles client traffic arriving at a replica.
func (r *Replica) onRPC(from ids.ID, payload []byte) {
	if r.stopped {
		return
	}
	rd := wire.NewReader(payload)
	if rd.U8() != tagRequest {
		return
	}
	req := decodeRequest(rd)
	if rd.Done() != nil || req.IsNoOp() {
		return
	}
	if req.Client != from {
		return // authenticated links: a client cannot impersonate another
	}
	if e, ok := r.exec[req.Client]; ok && e.num >= req.Num {
		// Retransmission of an executed request: re-send the cached result.
		// Only the most recent request's result is cached; a parked
		// request's response arrives when the blocking transaction
		// resolves, and older requests were answered at execution — never
		// re-send another request's bytes for them.
		if e.num == req.Num && !e.pending {
			r.respond(req.Client, req.Num, 0, e.res)
		}
		return
	}
	dg := req.Digest()
	r.proc.Charge(latmodel.DigestCost(len(req.Payload)))
	if _, dup := r.reqStore[dg]; dup {
		return
	}
	r.reqStore[dg] = req

	// Unblock any PREPARE waiting for this request's endorsement (batch
	// containers become endorsable once their last sub-request arrives).
	for _, ss := range r.slots {
		if ss.waitingReq != nil && r.requestKnown(ss.waitingReq.Req) {
			r.endorse(*ss.waitingReq)
		}
	}

	if r.IsLeader() {
		r.noteEcho(dg, r.cfg.Self)
	} else {
		// Echo toward the leader (Fig 4, "Echo Req").
		r.sendEcho(dg)
	}
	r.armProgressTimer()
}

// sendEcho sends one digest echo to the leader through a pooled buffer
// (router.Send copies the frame before returning).
func (r *Replica) sendEcho(dg [xcrypto.DigestLen]byte) {
	w := wire.GetWriter(48)
	w.U8(tagEcho)
	w.Raw(dg[:])
	r.rt.Send(r.cfg.leaderOf(r.view), router.ChanDirect, w.Finish())
	wire.PutWriter(w)
}

// onEcho records a follower's echo at the leader.
func (r *Replica) onEcho(from ids.ID, rd *wire.Reader) {
	var dg [xcrypto.DigestLen]byte
	copy(dg[:], rd.Raw(xcrypto.DigestLen))
	if rd.Done() != nil || r.cfg.indexOf(from) < 0 {
		return
	}
	r.noteEcho(dg, from)
}

// noteEcho tracks who holds the request; the leader proposes once every
// follower echoed, or after EchoTimeout (a Byzantine client that sent its
// request to only some replicas cannot stall the system, §5.4).
func (r *Replica) noteEcho(dg [xcrypto.DigestLen]byte, from ids.ID) {
	if !r.IsLeader() {
		return
	}
	if _, done := r.proposed[dg]; done {
		return
	}
	if r.echoes[dg] == nil {
		r.echoes[dg] = make(map[ids.ID]bool)
	}
	r.echoes[dg][from] = true
	req, haveReq := r.reqStore[dg]
	if !haveReq {
		return // echo arrived before the client's own copy
	}
	if r.cfg.EchoTimeout <= 0 || len(r.echoes[dg]) == r.cfg.n() {
		r.finishEcho(dg, req)
		return
	}
	if _, armed := r.echoTimers[dg]; !armed {
		r.echoTimers[dg] = r.proc.After(r.cfg.EchoTimeout, func() {
			if req, ok := r.reqStore[dg]; ok {
				r.finishEcho(dg, req)
			}
		})
	}
}

func (r *Replica) finishEcho(dg [xcrypto.DigestLen]byte, req Request) {
	if t, ok := r.echoTimers[dg]; ok {
		t.Cancel()
		delete(r.echoTimers, dg)
	}
	delete(r.echoes, dg)
	r.enqueueProposal(req)
}

// rebroadcastPending re-routes known-but-unexecuted client requests after a
// view change: followers echo them to the new leader, the new leader
// enqueues its own copies. Without this, requests echoed to a crashed
// leader would be lost until the client retransmits.
func (r *Replica) rebroadcastPending() {
	for dg, req := range r.reqStore {
		if _, done := r.proposed[dg]; done || req.IsNoOp() || r.executedReq(req) {
			continue
		}
		if r.IsLeader() {
			r.noteEcho(dg, r.cfg.Self)
		} else {
			r.sendEcho(dg)
		}
	}
}

// respond sends an execution result back to the client.
func (r *Replica) respond(client ids.ID, reqNum uint64, slot Slot, result []byte) {
	w := wire.GetWriter(32 + len(result))
	w.U8(tagResponse)
	w.U64(reqNum)
	w.U64(uint64(slot))
	w.Bytes(result)
	r.rt.Send(client, router.ChanRPC, w.Finish())
	wire.PutWriter(w)
}

// Client is a uBFT client: it fires unsigned requests at every replica of
// the target consensus group and accepts a result confirmed by f+1 of them.
// A client may address several independent groups (the sharded deployment):
// all groups share one request-number sequence, so each group sees a
// strictly increasing subsequence of numbers.
type Client struct {
	rt     *router.Router
	proc   *sim.Proc
	groups [][]ids.ID
	f      int

	nextNum uint64
	pending map[uint64]*pendingReq
}

type pendingReq struct {
	group   int
	started sim.Time
	byRes   map[uint64]int // result checksum -> count
	results map[uint64][]byte
	done    func(result []byte, latency sim.Duration)
	fired   bool
}

// NewClient wires a single-group client onto its host router.
func NewClient(rt *router.Router, replicas []ids.ID, f int) *Client {
	return NewMultiClient(rt, [][]ids.ID{replicas}, f)
}

// NewMultiClient wires a client that can invoke any of several replica
// groups (all with the same fault threshold f) through one router. The
// shard layer uses this to reach every consensus group from one host.
func NewMultiClient(rt *router.Router, groups [][]ids.ID, f int) *Client {
	if len(groups) == 0 {
		panic("consensus: client needs at least one replica group")
	}
	c := &Client{
		rt:      rt,
		proc:    rt.Node().Proc(),
		groups:  groups,
		f:       f,
		pending: make(map[uint64]*pendingReq),
	}
	rt.Register(router.ChanRPC, c.onResponse)
	return c
}

// Groups returns how many replica groups this client can address.
func (c *Client) Groups() int { return len(c.groups) }

// Invoke submits payload to group 0 for replicated execution; done receives
// the f+1-confirmed result and the end-to-end latency.
func (c *Client) Invoke(payload []byte, done func(result []byte, latency sim.Duration)) uint64 {
	return c.InvokeGroup(0, payload, done)
}

// InvokeGroup submits payload to the given replica group. The returned
// request number is a per-group completion handle: Cancel(num) abandons the
// request (its done callback will never fire), which is how the cross-shard
// coordinator withdraws prepares from a group that timed out.
func (c *Client) InvokeGroup(group int, payload []byte, done func(result []byte, latency sim.Duration)) uint64 {
	c.nextNum++
	num := c.nextNum
	c.pending[num] = &pendingReq{
		group:   group,
		started: c.proc.Now(),
		byRes:   make(map[uint64]int),
		results: make(map[uint64][]byte),
		done:    done,
	}
	req := Request{Client: c.rt.ID(), Num: num, Payload: payload}
	w := wire.GetWriter(32 + len(payload))
	w.U8(tagRequest)
	req.encode(w)
	frame := w.Finish()
	for _, rep := range c.groups[group] {
		c.rt.Send(rep, router.ChanRPC, frame)
	}
	wire.PutWriter(w)
	return num
}

// Cancel abandons a pending request: late replica responses are ignored and
// the done callback never fires. It reports whether the request was still
// pending. The request itself may still be (or become) decided and executed
// by the group — Cancel gives up on observing the outcome, it cannot recall
// the submission.
func (c *Client) Cancel(num uint64) bool {
	if _, ok := c.pending[num]; !ok {
		return false
	}
	delete(c.pending, num)
	return true
}

// PendingCount reports how many requests await f+1 confirmations (bounded-
// memory diagnostics: abandoned requests must not accumulate here).
func (c *Client) PendingCount() int { return len(c.pending) }

func (c *Client) onResponse(from ids.ID, payload []byte) {
	rd := wire.NewReader(payload)
	if rd.U8() != tagResponse {
		return
	}
	num := rd.U64()
	rd.U64() // slot (informational)
	result := rd.Bytes()
	if rd.Done() != nil {
		return
	}
	p := c.pending[num]
	if p == nil || p.fired {
		return
	}
	if !c.isReplicaOf(from, p.group) {
		return // response from outside the group this request went to
	}
	key := xcrypto.ChecksumNoCharge(result)
	p.byRes[key]++
	p.results[key] = result
	if p.byRes[key] >= c.f+1 {
		p.fired = true
		delete(c.pending, num)
		p.done(result, c.proc.Now().Sub(p.started))
	}
}

func (c *Client) isReplicaOf(id ids.ID, group int) bool {
	for _, r := range c.groups[group] {
		if r == id {
			return true
		}
	}
	return false
}
