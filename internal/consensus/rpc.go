package consensus

import (
	"math/bits"

	"repro/internal/app"
	"repro/internal/ids"
	"repro/internal/latmodel"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/wire"
	"repro/internal/xcrypto"
)

// This file implements uBFT's RPC layer (§5.4 and Figure 4's Echo round):
// clients send UNSIGNED requests to all replicas (no client signatures on
// the fast path); followers echo each request to the leader so the leader
// knows everyone holds it before proposing; replicas respond after
// execution and the client accepts a result once f+1 replicas agree.
//
// It also implements the unordered read fast path (the classic PBFT-style
// read-only optimization) at three consistency levels:
//
//   - Monotonic (unpinned): each replica executes the read tentatively
//     against its own last-applied state; the client accepts f+1 matching
//     digests at versions >= its per-group monotonic floor.
//   - Snapshot (pinned): the request names an exact state version; every
//     replica answers as-of that version from its MVCC store (parking
//     briefly if execution has not reached it), so f+1 matching digests
//     attest the value AT that version — the building block of the shard
//     layer's consistent snapshot scatter-gather.
//   - Strong (linearizable): the client requires ALL 2f+1 replicas to
//     agree — first sampled unpinned, then pinned at the highest version
//     any replica revealed — so the accepted version is at least as new as
//     any write that completed before the read began.
//
// Every level falls back transparently to the ordered path on mismatch,
// timeout, refusal, or a transaction-locked key.

const (
	tagEcho         = wire.TagEcho
	tagRequest      = wire.TagRequest
	tagResponse     = wire.TagResponse
	tagReadRequest  = wire.TagReadRequest
	tagReadResponse = wire.TagReadResponse
)

// tagReadResponse flag bits.
const (
	// readFlagServed: the replica answered the read (clear = refused).
	readFlagServed = wire.ReadFlagServed
	// readFlagCrossed: a pinned read may straddle a transaction — some key
	// is currently transaction-locked on this replica, or has a
	// transaction-installed version newer than the pin. The shard layer's
	// consistent-cut rule turns this into a chase or fallback.
	readFlagCrossed = wire.ReadFlagCrossed
)

// tagResponse flag bits.
const (
	// respFlagParked: the request parked in the transaction wait queue and
	// its result was produced at lock release — i.e. an ordered read that
	// actually crossed a transaction. Parking is a deterministic property
	// of the ordered execution, so correct replicas agree on it and the
	// client's f+1 match vouches for the flag (it lives inside the response
	// class key).
	respFlagParked = wire.RespFlagParked
)

// pinnedReadCap bounds the queue of pinned reads parked while execution
// catches up to their pin (a pin is at most one fast-read round-trip ahead
// of the slowest correct replica, so entries drain within a round).
const pinnedReadCap = 512

// pinnedRead is one as-of read waiting for this replica's execution to
// reach its pin.
type pinnedRead struct {
	from    ids.ID
	num     uint64
	at      Slot
	payload []byte
}

// onRPC handles client traffic arriving at a replica.
func (r *Replica) onRPC(from ids.ID, payload []byte) {
	if r.stopped {
		return
	}
	rd := wire.NewReader(payload)
	switch rd.U8() {
	case tagRequest:
		r.onClientRequest(from, rd)
	case tagReadRequest:
		r.onReadRequest(from, rd)
	}
}

// onClientRequest handles an ordered (write-path) client request.
func (r *Replica) onClientRequest(from ids.ID, rd *wire.Reader) {
	if r.observing() {
		// Observe-only window: no echoes, no proposals. Dropping (rather
		// than storing) is deliberate — the other 2f replicas hold the
		// client's copy and decide it, but it would execute below this
		// replica's rejoin snapshot, so a stored copy here would never be
		// marked executed and would read as permanently stalled work,
		// feeding the suspicion timer spurious view changes after resume.
		return
	}
	req := decodeRequest(rd)
	if rd.Done() != nil || req.IsNoOp() {
		return
	}
	if req.Client != from {
		return // authenticated links: a client cannot impersonate another
	}
	if e, ok := r.exec[req.Client]; ok && e.num >= req.Num {
		// Retransmission of an executed request: re-send the cached result.
		// Only the most recent request's result is cached; a parked
		// request's response arrives when the blocking transaction
		// resolves, and older requests were answered at execution — never
		// re-send another request's bytes for them.
		if e.num == req.Num && !e.pending {
			// Re-send with the original execution slot: the client's f+1
			// match covers (result, slot), so a retransmission must land
			// in the same class as the first-execution responses.
			r.respond(req.Client, req.Num, e.slot, e.res, e.parked)
		} else {
			r.droppedExecOld++
		}
		return
	}
	dg := req.Digest()
	r.proc.Charge(latmodel.DigestCost(len(req.Payload)))
	if _, dup := r.reqStore[dg]; dup {
		return
	}
	r.reqStore[dg] = req

	// Unblock any PREPARE waiting for this request's endorsement (batch
	// containers become endorsable once their last sub-request arrives).
	// Slot order, so endorsements are emitted identically every run.
	for _, s := range sortedSlots(r.slots) {
		if ss := r.slots[s]; ss.waitingReq != nil && r.requestKnown(ss.waitingReq.Req) {
			r.endorse(*ss.waitingReq)
		}
	}

	if r.IsLeader() {
		r.noteEcho(dg, r.cfg.Self)
	} else {
		// Echo toward the leader (Fig 4, "Echo Req").
		r.sendEcho(dg)
	}
	r.armProgressTimer()
}

// onReadRequest serves the unordered read fast path: execute the read
// tentatively — against this replica's last-applied state (unpinned), or
// as-of the exact version the request pins (at > 0) — and reply with the
// result plus the state version (LastApplied) execution has reached. The
// read never touches the ordering pipeline — no digest, no echo, no slot —
// but its execution is charged like any ordered execution. Requests the
// application cannot answer read-only (no ReadExecutor capability, a write
// opcode, a pin below the MVCC GC horizon) are refused explicitly so the
// client falls back without waiting out its timeout.
func (r *Replica) onReadRequest(from ids.ID, rd *wire.Reader) {
	num := rd.U64()
	at := Slot(rd.U64())
	payload := rd.BytesView()
	if rd.Done() != nil {
		return
	}
	if r.observing() {
		// Refuse explicitly while rejoining: our state is mid-transfer, and
		// an explicit refusal lets the client complete its quorum from the
		// 2f live replicas (or fall back) instead of waiting out a timeout.
		r.replyRead(from, num, 0, nil)
		return
	}
	if at > 0 {
		r.serveReadAt(from, num, at, payload)
		return
	}
	var result []byte
	var flags uint8
	if re, ok := r.cfg.App.(app.ReadExecutor); ok {
		if res, readable := re.ApplyRead(payload); readable {
			r.proc.Charge(r.cfg.App.ExecCost(payload) + latmodel.AppExecBase)
			result, flags = res, readFlagServed
			r.ReadsServed++
		}
	}
	r.replyRead(from, num, flags, result)
}

// serveReadAt answers a read pinned to an exact state version from the
// application's MVCC store. A replica whose execution has not yet reached
// the pin parks the read in a bounded queue drained as slots apply (the pin
// came from a version some replica already reached, so the wait is one
// replication delay, not unbounded); everything else it cannot serve — no
// versioning capability, a pin below the GC horizon, a non-read request, a
// full queue — is refused immediately so the client can fall back.
func (r *Replica) serveReadAt(from ids.ID, num uint64, at Slot, payload []byte) {
	if r.appVerRead == nil {
		r.replyRead(from, num, 0, nil)
		return
	}
	if r.lastApplied < at {
		if len(r.pinnedReads) >= pinnedReadCap {
			r.replyRead(from, num, 0, nil)
			return
		}
		// BytesView aliases the arriving frame: copy before parking.
		p := make([]byte, len(payload))
		copy(p, payload)
		r.pinnedReads = append(r.pinnedReads, pinnedRead{from: from, num: num, at: at, payload: p})
		return
	}
	res, crossed, ok := r.appVerRead.ApplyReadAt(payload, uint64(at))
	if !ok {
		r.replyRead(from, num, 0, nil)
		return
	}
	r.proc.Charge(r.cfg.App.ExecCost(payload) + latmodel.AppExecBase)
	flags := readFlagServed
	if crossed {
		flags |= readFlagCrossed
	}
	r.ReadsServed++
	r.replyRead(from, num, flags, res)
}

// drainPinnedReads serves parked pinned reads whose pin execution has
// reached (called after every execution batch).
func (r *Replica) drainPinnedReads() {
	if len(r.pinnedReads) == 0 {
		return
	}
	kept := r.pinnedReads[:0]
	for _, pr := range r.pinnedReads {
		if r.lastApplied < pr.at {
			kept = append(kept, pr)
			continue
		}
		r.serveReadAt(pr.from, pr.num, pr.at, pr.payload)
	}
	for i := len(kept); i < len(r.pinnedReads); i++ {
		r.pinnedReads[i] = pinnedRead{} // release parked payloads
	}
	r.pinnedReads = kept
}

// replyRead sends one fast-read reply. The version field always carries
// lastApplied — for a pinned read the RESULT is as-of the pin, but the
// version still teaches the client how far this replica has executed (its
// frontier input).
func (r *Replica) replyRead(to ids.ID, num uint64, flags uint8, result []byte) {
	w := wire.GetWriter(40 + len(result))
	w.U8(tagReadResponse)
	w.U64(num)
	w.U64(uint64(r.lastApplied))
	w.U8(flags)
	w.Bytes(result)
	r.rt.Send(to, router.ChanRPC, w.Finish())
	wire.PutWriter(w)
}

// sendEcho sends one digest echo to the leader through a pooled buffer
// (router.Send copies the frame before returning).
func (r *Replica) sendEcho(dg [xcrypto.DigestLen]byte) {
	w := wire.GetWriter(48)
	w.U8(tagEcho)
	w.Raw(dg[:])
	r.rt.Send(r.cfg.leaderOf(r.view), router.ChanDirect, w.Finish())
	wire.PutWriter(w)
}

// onEcho records a follower's echo at the leader.
func (r *Replica) onEcho(from ids.ID, rd *wire.Reader) {
	var dg [xcrypto.DigestLen]byte
	copy(dg[:], rd.Raw(xcrypto.DigestLen))
	if rd.Done() != nil || r.cfg.indexOf(from) < 0 || r.observing() {
		return
	}
	r.noteEcho(dg, from)
}

// noteEcho tracks who holds the request; the leader proposes once every
// follower echoed, or after EchoTimeout (a Byzantine client that sent its
// request to only some replicas cannot stall the system, §5.4).
func (r *Replica) noteEcho(dg [xcrypto.DigestLen]byte, from ids.ID) {
	if !r.IsLeader() {
		return
	}
	if _, done := r.proposed[dg]; done {
		return
	}
	if r.echoes[dg] == nil {
		r.echoes[dg] = make(map[ids.ID]bool)
	}
	r.echoes[dg][from] = true
	req, haveReq := r.reqStore[dg]
	if !haveReq {
		return // echo arrived before the client's own copy
	}
	if r.cfg.EchoTimeout <= 0 || len(r.echoes[dg]) == r.cfg.n() {
		r.finishEcho(dg, req)
		return
	}
	if _, armed := r.echoTimers[dg]; !armed {
		r.echoTimers[dg] = r.proc.After(r.cfg.EchoTimeout, func() {
			if req, ok := r.reqStore[dg]; ok {
				r.finishEcho(dg, req)
			}
		})
	}
}

func (r *Replica) finishEcho(dg [xcrypto.DigestLen]byte, req Request) {
	if t, ok := r.echoTimers[dg]; ok {
		t.Cancel()
		delete(r.echoTimers, dg)
	}
	delete(r.echoes, dg)
	delete(r.echoGrace, dg)
	r.enqueueProposal(req)
}

// rebroadcastPending re-routes known-but-unexecuted client requests after a
// view change: followers echo them to the new leader, the new leader
// enqueues its own copies. Without this, requests echoed to a crashed
// leader would be lost until the client retransmits.
func (r *Replica) rebroadcastPending() {
	// Digest order: the re-echo/re-proposal sequence is part of the
	// deterministic trace.
	for _, dg := range sortedDigests(r.reqStore) {
		if !r.shouldRebroadcast(dg, r.reqStore[dg]) {
			continue
		}
		if r.IsLeader() {
			// A stale undecided proposal from a previous view is being
			// re-routed as fresh work: drop its dedup entry so noteEcho and
			// enqueueProposal do not swallow the re-proposal. If the old
			// slot later decides anyway, exactly-once execution dedups the
			// second copy.
			delete(r.proposed, dg)
			r.noteEcho(dg, r.cfg.Self)
		} else {
			r.sendEcho(dg)
		}
	}
}

// shouldRebroadcast reports whether a stored client request still needs
// re-routing toward the (new) leader. A request is settled only when its
// proposal actually decided (or fell below the stable checkpoint, which
// implies decided), or when THIS exact request executed. The executed test
// deliberately requires e.num == req.Num rather than the monotone
// seenExec: an echo-ordering inversion leaves a lower-numbered, never-
// executed request in reqStore while the client's exec high-water mark has
// moved past it — the monotone test would mislabel it settled and a view
// change at that moment would skip its one rebroadcast, wedging the client
// (executed requests are deleted from reqStore at execution, so an old-num
// entry here is exactly that inversion victim).
func (r *Replica) shouldRebroadcast(dg [xcrypto.DigestLen]byte, req Request) bool {
	if req.IsNoOp() {
		return false
	}
	if s, proposed := r.proposed[dg]; proposed {
		if s < r.chkpt.Seq {
			return false
		}
		if _, dec := r.decided[s]; dec {
			return false
		}
		return true
	}
	e, ok := r.exec[req.Client]
	return !ok || e.num != req.Num
}

// respond sends an execution result back to the client.
func (r *Replica) respond(client ids.ID, reqNum uint64, slot Slot, result []byte, parked bool) {
	w := wire.GetWriter(40 + len(result))
	w.U8(tagResponse)
	w.U64(reqNum)
	w.U64(uint64(slot))
	var flags uint8
	if parked {
		flags |= respFlagParked
	}
	w.U8(flags)
	w.Bytes(result)
	r.rt.Send(client, router.ChanRPC, w.Finish())
	wire.PutWriter(w)
}

// Client is a uBFT client: it fires unsigned requests at every replica of
// the target consensus group and accepts a result confirmed by f+1 of them.
// A client may address several independent groups (the sharded deployment):
// all groups share one request-number sequence, so each group sees a
// strictly increasing subsequence of numbers.
type Client struct {
	rt     *router.Router
	proc   *sim.Proc
	groups [][]ids.ID
	f      int

	nextNum uint64
	pending map[uint64]*pendingReq

	// Read fast path state: in-flight unordered reads, the per-group
	// monotonic read floor (the lowest state version a fast read may be
	// answered at — ratcheted by every accepted read AND every ordered
	// response, which is what gives one client monotonic reads and
	// read-your-writes across the two paths), and the quorum timeout.
	pendingReads map[uint64]*pendingRead
	readFloor    []Slot
	readTimeout  sim.Duration

	// Read fast path stats.
	FastReads     uint64 // reads answered by an f+1 unordered quorum
	StrongReads   uint64 // reads answered by a 2f+1 strong quorum
	ReadFallbacks uint64 // reads that fell back to the ordered path

	// Byzantine-harness defense-off switches (see the SetUnsafe* setters):
	// accept the first matching class instead of a quorum, and disable the
	// ordered-path fallback safety net. Never set in production.
	unsafeQuorumOne      bool
	unsafeNoReadFallback bool
}

// resTally accumulates one result class of a pending request: the vote
// count, the result bytes, and the LOWEST slot/version the class reported.
//
// On the ordered path the class key covers (result, slot, parked) together
// — correct replicas are deterministic state machines that execute a
// request at one agreed slot (and park it, or not, deterministically), so
// they all land in one class, while a replica lying about the result, the
// slot or the parked marker forms its own class that can never reach f+1
// without f+1 colluders. The winning class's slot is therefore
// quorum-vouched in full: it can neither be inflated (which would poison
// the read floor and permanently deny the fast-read path) nor deflated
// (which would quietly weaken read-your-writes); ditto the parked marker,
// which drives the shard layer's revalidation decision.
//
// On the read path versions stay OUTSIDE the class key — the whole point
// is accepting the same value read at different versions — and the floor
// ratchets from the class minimum, which is bounded below by the read's
// own floor (stale replies are never counted), so a lone Byzantine replica
// can at worst keep the floor where it already was. The crossed flag is
// OR'd across the counted replies of the class instead: any correct
// replica that saw the read straddle a transaction taints the accepted
// result, which can cost a needless chase round but never hide one.
type resTally struct {
	count   int
	result  []byte
	minSlot Slot
	parked  bool // ordered path: quorum-vouched parked marker (in the key)
	crossed bool // read path: OR of txn-crossed flags over counted replies
}

func (t *resTally) add(result []byte, slot Slot) {
	t.count++
	t.result = result
	if t.count == 1 || slot < t.minSlot {
		t.minSlot = slot
	}
}

type pendingReq struct {
	group   int
	started sim.Time
	replied uint64              // bitmask of replica indices already counted
	byRes   map[uint64]resTally // result checksum -> class tally
	done    func(result []byte, parked bool, latency sim.Duration)
	fired   bool
}

// pendingRead tracks one in-flight unordered read.
type pendingRead struct {
	group   int
	payload []byte
	minSlot Slot
	// at pins the read to an exact state version (0 = unpinned: every
	// replica answers at its own last-applied state).
	at Slot
	// strong requires ALL 2f+1 replicas to agree instead of f+1: with the
	// full group in the quorum, any write that completed before the read
	// began — which executed on at least f+1 replicas — intersects it, so
	// the accepted version cannot predate the write (linearizability).
	strong  bool
	started sim.Time
	replied uint64 // bitmask of replica indices already counted
	// byRes tallies fresh (version >= minSlot) replies per result digest;
	// the class minimum version is the quorum-vouched ratchet (see
	// resTally), bounded below by the floor since stale replies are never
	// counted at all.
	byRes map[uint64]resTally
	// frontier is the highest version ANY reply carried — advisory input
	// to the scatter-gather snapshot pinning and the strong read's second
	// round only (a forged frontier costs at most futile pin rounds before
	// the ordered fallback); it never ratchets the persistent floor.
	frontier Slot
	refused  int
	fellBack bool
	ordNum   uint64 // the ordered request number after fallback
	timer    sim.Timer
	done     func(result []byte, slot, frontier Slot, crossed, fellBack bool, latency sim.Duration)
}

// defaultReadTimeout bounds how long a fast read waits for its quorum
// before falling back to the ordered path. Generous against queueing at
// saturation (a fast read round trip is tens of microseconds), small
// against the fallback's own consensus latency.
const defaultReadTimeout = 500 * sim.Microsecond

// NewClient wires a single-group client onto its host router.
func NewClient(rt *router.Router, replicas []ids.ID, f int) *Client {
	return NewMultiClient(rt, [][]ids.ID{replicas}, f)
}

// NewMultiClient wires a client that can invoke any of several replica
// groups (all with the same fault threshold f) through one router. The
// shard layer uses this to reach every consensus group from one host.
func NewMultiClient(rt *router.Router, groups [][]ids.ID, f int) *Client {
	if len(groups) == 0 {
		panic("consensus: client needs at least one replica group")
	}
	c := &Client{
		rt:           rt,
		proc:         rt.Node().Proc(),
		groups:       groups,
		f:            f,
		pending:      make(map[uint64]*pendingReq),
		pendingReads: make(map[uint64]*pendingRead),
		readFloor:    make([]Slot, len(groups)),
		readTimeout:  defaultReadTimeout,
	}
	rt.Register(router.ChanRPC, c.onRPC)
	return c
}

// SetReadTimeout overrides how long a fast read waits for its quorum
// before falling back to the ordered path (default 500us of virtual time).
func (c *Client) SetReadTimeout(d sim.Duration) {
	if d > 0 {
		c.readTimeout = d
	}
}

// Groups returns how many replica groups this client can address.
func (c *Client) Groups() int { return len(c.groups) }

// ReadFloor exposes the per-group monotonic read floor (the lowest state
// version a fast read may be answered at) — the Byzantine harness and the
// adversarial fuzz targets assert a hostile reply can never inflate it.
func (c *Client) ReadFloor(group int) Slot { return c.readFloor[group] }

// SetUnsafeQuorumOne makes every quorum rule accept the FIRST reply class
// (need=1) instead of f+1 / 2f+1 — i.e. it switches the response and read
// quorum checks off. Byzantine-harness only: it exists so the adversarial
// suite can prove a lone forging replica is accepted (and the invariant
// checker trips) once the quorum defense is gone. Never set in production.
func (c *Client) SetUnsafeQuorumOne(on bool) { c.unsafeQuorumOne = on }

// SetUnsafeNoReadFallback disables the ordered-path fallback safety net of
// the read fast path (failed reads hang instead of falling back).
// Byzantine-harness only: with the fallback off, an attack that merely
// forces a fallback in production instead surfaces as a stuck or wrong
// read the invariant checker can observe. Never set in production.
func (c *Client) SetUnsafeNoReadFallback(on bool) { c.unsafeNoReadFallback = on }

// Invoke submits payload to group 0 for replicated execution; done receives
// the f+1-confirmed result and the end-to-end latency.
func (c *Client) Invoke(payload []byte, done func(result []byte, latency sim.Duration)) uint64 {
	return c.InvokeGroup(0, payload, done)
}

// InvokeGroup submits payload to the given replica group. The returned
// request number is a per-group completion handle: Cancel(num) abandons the
// request (its done callback will never fire), which is how the cross-shard
// coordinator withdraws prepares from a group that timed out.
func (c *Client) InvokeGroup(group int, payload []byte, done func(result []byte, latency sim.Duration)) uint64 {
	return c.invokeGroupEx(group, payload, func(result []byte, _ bool, latency sim.Duration) {
		done(result, latency)
	})
}

// InvokeGroupParked is InvokeGroup surfacing the quorum-vouched parked
// marker: whether the request parked in the transaction wait queue
// server-side and was answered at lock release (i.e. it crossed a
// transaction). The shard layer's degraded scatter stage uses it to
// revalidate sibling legs only behind fallbacks that actually crossed a
// transaction, not behind every lost packet.
func (c *Client) InvokeGroupParked(group int, payload []byte, done func(result []byte, parked bool, latency sim.Duration)) uint64 {
	return c.invokeGroupEx(group, payload, done)
}

func (c *Client) invokeGroupEx(group int, payload []byte, done func(result []byte, parked bool, latency sim.Duration)) uint64 {
	c.nextNum++
	num := c.nextNum
	c.pending[num] = &pendingReq{
		group:   group,
		started: c.proc.Now(),
		byRes:   make(map[uint64]resTally),
		done:    done,
	}
	req := Request{Client: c.rt.ID(), Num: num, Payload: payload}
	w := wire.GetWriter(32 + len(payload))
	w.U8(tagRequest)
	req.encode(w)
	frame := w.Finish()
	for _, rep := range c.groups[group] {
		c.rt.Send(rep, router.ChanRPC, frame)
	}
	wire.PutWriter(w)
	return num
}

// Cancel abandons a pending request: late replica responses are ignored and
// the done callback never fires. It reports whether the request was still
// pending. The request itself may still be (or become) decided and executed
// by the group — Cancel gives up on observing the outcome, it cannot recall
// the submission. Cancelling a fast read also abandons its ordered
// fallback, if one is in flight. (A strong read that entered its pinned
// second round is tracked under a fresh number; the original handle no
// longer cancels it.)
func (c *Client) Cancel(num uint64) bool {
	if p, ok := c.pendingReads[num]; ok {
		delete(c.pendingReads, num)
		p.timer.Cancel()
		if p.fellBack {
			delete(c.pending, p.ordNum)
		}
		return true
	}
	if _, ok := c.pending[num]; !ok {
		return false
	}
	delete(c.pending, num)
	return true
}

// PendingCount reports how many requests await confirmation, ordered and
// fast-read alike (bounded-memory diagnostics: abandoned requests must not
// accumulate here). A read in its fallback phase counts twice — once for
// the read handle, once for the inner ordered request — until it resolves.
func (c *Client) PendingCount() int { return len(c.pending) + len(c.pendingReads) }

func (c *Client) onRPC(from ids.ID, payload []byte) {
	rd := wire.NewReader(payload)
	switch rd.U8() {
	case tagResponse:
		c.onResponse(from, rd)
	case tagReadResponse:
		c.onReadResponse(from, rd)
	}
}

func (c *Client) onResponse(from ids.ID, rd *wire.Reader) {
	num := rd.U64()
	slot := Slot(rd.U64())
	flags := rd.U8()
	result := rd.Bytes()
	if rd.Done() != nil {
		return
	}
	p := c.pending[num]
	if p == nil || p.fired {
		return
	}
	idx := c.replicaIndex(from, p.group)
	if idx < 0 {
		return // response from outside the group this request went to
	}
	bit := uint64(1) << uint(idx)
	if p.replied&bit != 0 {
		return // one response per replica counts toward the quorum
	}
	p.replied |= bit
	parked := flags&respFlagParked != 0
	// The class key mixes the slot and the parked marker into the result
	// checksum so the f+1 match covers all three (see resTally).
	key := xcrypto.ChecksumNoCharge(result) + uint64(slot)*0x9E3779B97F4A7C15
	if parked {
		key ^= 0xC2B2AE3D27D4EB4F
	}
	t := p.byRes[key]
	t.add(result, slot)
	t.parked = parked
	p.byRes[key] = t
	need := c.f + 1
	if c.unsafeQuorumOne {
		need = 1
	}
	if t.count >= need {
		p.fired = true
		delete(c.pending, num)
		// The request executed at the slot the winning class vouches for
		// (its minimum — see resTally), so the group's state now includes
		// it: ratchet the read floor so a later fast read by this client
		// can never observe a version that predates this response
		// (read-your-writes and monotonic reads across both paths).
		c.noteVersion(p.group, t.minSlot+1)
		p.done(result, t.parked, c.proc.Now().Sub(p.started))
	}
}

func (c *Client) replicaIndex(id ids.ID, group int) int {
	for i, r := range c.groups[group] {
		if r == id {
			return i
		}
	}
	return -1
}

// noteVersion ratchets the per-group monotonic read floor.
func (c *Client) noteVersion(group int, v Slot) {
	if v > c.readFloor[group] {
		c.readFloor[group] = v
	}
}

// ---------------------------------------------------------------------
// Unordered read fast path (client side).
// ---------------------------------------------------------------------

// InvokeRead submits a read-only request to group 0's unordered fast path:
// one round trip to all 2f+1 replicas, accepted on f+1 matching result
// digests at a compatible state version, with a transparent fallback to
// the ordered Invoke path on mismatch, timeout, refusal or a
// transaction-locked key. done always fires exactly once with the final
// result and the end-to-end latency (fallback included).
func (c *Client) InvokeRead(payload []byte, done func(result []byte, latency sim.Duration)) uint64 {
	return c.InvokeGroupRead(0, payload, done)
}

// InvokeGroupRead is InvokeRead addressed at one replica group.
func (c *Client) InvokeGroupRead(group int, payload []byte, done func(result []byte, latency sim.Duration)) uint64 {
	return c.InvokeGroupReadAt(group, payload, 0, 0, func(res []byte, _, _ Slot, _, _ bool, lat sim.Duration) {
		done(res, lat)
	})
}

// InvokeReadStrong submits a linearizable read to group 0: see
// InvokeGroupReadStrong.
func (c *Client) InvokeReadStrong(payload []byte, done func(result []byte, latency sim.Duration)) uint64 {
	return c.InvokeGroupReadStrong(0, payload, done)
}

// InvokeGroupReadStrong is the linearizable strong read: it requires ALL
// 2f+1 replicas of the group to agree on (result, version). Any write that
// completed before this read began executed on at least f+1 replicas, so
// the all-replica quorum necessarily includes one that has applied it —
// the agreed version cannot predate any completed write. Round one samples
// every replica unpinned; if they answer at one common version the read is
// done in a single round trip. Otherwise the replicas are skewed: round
// two re-reads pinned at the highest version round one revealed, which
// every correct replica serves once its execution catches up (MVCC apps
// only). Refusals, mismatches beyond round two, or a timeout fall back to
// the ordered path, which is linearizable by construction.
func (c *Client) InvokeGroupReadStrong(group int, payload []byte, done func(result []byte, latency sim.Duration)) uint64 {
	return c.startRead(group, payload, 0, 0, true, c.proc.Now(),
		func(res []byte, _, _ Slot, _, _ bool, lat sim.Duration) {
			done(res, lat)
		})
}

// InvokeGroupReadAt is the version-aware fast read the shard layer's
// snapshot-consistent scatter-gather builds on.
//
// With at == 0 the read is unpinned: only replies at state version >=
// minSlot (and >= this client's monotonic floor for the group) count
// toward the f+1 quorum. With at > 0 the read is pinned: every replica
// answers as-of exactly that version from its MVCC store, so the f+1
// matching digests attest the value AT the pin regardless of replica skew.
//
// done additionally receives the version the accepted result was read at,
// the group frontier (the highest version ANY reply revealed — the input
// for choosing pins), whether the result may have crossed a transaction —
// for a pinned quorum the OR of the replicas' txn-crossed flags, for an
// ordered fallback the quorum-vouched parked marker — and whether the read
// resolved through the ordered fallback. The crossed flag is the shard
// layer's consistent-cut signal: a clean (uncrossed) pinned leg provably
// did not straddle any cross-shard transaction that committed before the
// pin round began.
func (c *Client) InvokeGroupReadAt(group int, payload []byte, minSlot, at Slot, done func(result []byte, slot, frontier Slot, crossed, fellBack bool, latency sim.Duration)) uint64 {
	return c.startRead(group, payload, minSlot, at, false, c.proc.Now(), done)
}

// startRead fires one unordered read round at every replica of the group.
func (c *Client) startRead(group int, payload []byte, minSlot, at Slot, strong bool, started sim.Time, done func(result []byte, slot, frontier Slot, crossed, fellBack bool, latency sim.Duration)) uint64 {
	c.nextNum++
	num := c.nextNum
	if at == 0 {
		if f := c.readFloor[group]; f > minSlot {
			minSlot = f
		}
	}
	p := &pendingRead{
		group:   group,
		payload: payload,
		minSlot: minSlot,
		at:      at,
		strong:  strong,
		started: started,
		byRes:   make(map[uint64]resTally),
		done:    done,
	}
	c.pendingReads[num] = p
	w := wire.GetWriter(40 + len(payload))
	w.U8(tagReadRequest)
	w.U64(num)
	w.U64(uint64(at))
	w.Bytes(payload)
	frame := w.Finish()
	for _, rep := range c.groups[group] {
		c.rt.Send(rep, router.ChanRPC, frame)
	}
	wire.PutWriter(w)
	p.timer = c.proc.After(c.readTimeout, func() { c.readFallback(num, p) })
	return num
}

// onReadResponse collects one replica's fast-read reply. Acceptance needs
// f+1 (strong: all 2f+1) replies carrying the same result digest at
// compatible versions; a full round without acceptance (digest mismatch,
// stale replicas, refusals) or an accepted-but-locked result falls back to
// the ordered path — except a strong sample round that merely found the
// replicas version-skewed, which re-reads pinned at the revealed frontier
// first.
func (c *Client) onReadResponse(from ids.ID, rd *wire.Reader) {
	num := rd.U64()
	version := Slot(rd.U64())
	flags := rd.U8()
	result := rd.Bytes()
	if rd.Done() != nil {
		return
	}
	p := c.pendingReads[num]
	if p == nil || p.fellBack {
		return
	}
	idx := c.replicaIndex(from, p.group)
	if idx < 0 {
		return
	}
	bit := uint64(1) << uint(idx)
	if p.replied&bit != 0 {
		return // one reply per replica counts
	}
	p.replied |= bit
	if version > p.frontier {
		p.frontier = version
	}
	n := len(c.groups[p.group])
	need := c.f + 1
	if p.strong {
		need = n
	}
	if c.unsafeQuorumOne {
		need = 1
	}
	served := flags&readFlagServed != 0
	if !served {
		p.refused++
		// f+1 refusals prove no quorum will form (at least one correct
		// replica refuses, and refusal is a deterministic property of the
		// request); a strong read cannot survive even one.
		if p.refused >= c.f+1 || p.strong {
			c.readFallback(num, p)
			return
		}
	} else if p.at > 0 || version >= p.minSlot {
		key := app.ReadDigest(result)
		if p.strong && p.at == 0 {
			// The strong sample round must be unanimous at ONE version:
			// the same bytes read at different versions do not certify a
			// linearization point, so the version joins the class key.
			key += uint64(version) * 0x9E3779B97F4A7C15
		}
		t := p.byRes[key]
		t.add(result, version)
		t.crossed = t.crossed || flags&readFlagCrossed != 0
		p.byRes[key] = t
		if t.count >= need {
			if p.at == 0 && len(t.result) == 1 && t.result[0] == app.StatusLocked {
				// A transaction holds the keys: always fall back — the
				// ordered path parks behind the lock and answers when the
				// transaction resolves (the wait-queue semantics readers
				// rely on for isolation).
				c.readFallback(num, p)
				return
			}
			p.timer.Cancel()
			delete(c.pendingReads, num)
			slot := t.minSlot
			if p.at > 0 {
				slot = p.at
			}
			if p.strong {
				c.StrongReads++
			} else {
				c.FastReads++
			}
			c.noteVersion(p.group, slot)
			p.done(t.result, slot, p.frontier, t.crossed, false, c.proc.Now().Sub(p.started))
			return
		}
	}
	if bits.OnesCount64(p.replied) == n {
		if p.strong && p.at == 0 && p.refused == 0 && p.frontier > 0 {
			// Every replica answered but at skewed versions: pin round.
			c.strongPin(num, p)
			return
		}
		// Every replica replied and no compatible quorum formed.
		c.readFallback(num, p)
	}
}

// strongPin is the strong read's second round: the sample proved every
// replica serves the read but execution is skewed, so re-read pinned at
// the highest version any replica revealed — a version every correct
// replica can answer as-of (from its MVCC store) once it catches up.
func (c *Client) strongPin(num uint64, p *pendingRead) {
	if p.fellBack || c.pendingReads[num] != p {
		return
	}
	p.timer.Cancel()
	delete(c.pendingReads, num)
	c.startRead(p.group, p.payload, 0, p.frontier, true, p.started, p.done)
}

// readFallback re-submits a fast read through the ordered path. The
// ordered result is always correct (it is the exact path a deployment
// without fast reads runs), so this is the safety net every fast-read
// failure mode lands on. The crossed flag reported upward is the ordered
// response's quorum-vouched parked marker: whether the read actually
// waited out a transaction server-side — the signal that lets the shard
// layer's revalidation skip fallbacks that merely lost a race or a packet.
func (c *Client) readFallback(num uint64, p *pendingRead) {
	if p.fellBack || c.pendingReads[num] != p {
		return
	}
	if c.unsafeNoReadFallback {
		// Defense-off mode (Byzantine harness): let the failed read hang so
		// the attack's effect is observable instead of safely absorbed.
		return
	}
	p.fellBack = true
	p.timer.Cancel()
	c.ReadFallbacks++
	p.ordNum = c.invokeGroupEx(p.group, p.payload, func(result []byte, parked bool, _ sim.Duration) {
		delete(c.pendingReads, num)
		// The ordered execution ratcheted the floor already; report it as
		// both slot and frontier so a scatter-gather caller never retries
		// an ordered leg.
		v := c.readFloor[p.group]
		if p.frontier > v {
			v = p.frontier
		}
		p.done(result, v, v, parked, true, c.proc.Now().Sub(p.started))
	})
}
