package consensus

import (
	"repro/internal/ids"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/wire"
)

// This file implements cold rejoin: a replica that crashed and restarted
// with no durable state re-enters the cluster without weakening any
// quorum argument. The protocol has three phases:
//
//   - probing: broadcast a JOIN probe carrying a fresh incarnation nonce.
//     Peers that see a higher nonce rewind every channel they hold for us
//     (receiver rings, CTBcast channel state, sender-side ack floors) so
//     our reborn identifier stream is accepted, then answer with their
//     current (view, stable checkpoint). f+1 matching answers fix the
//     sync point — no lone Byzantine peer can define it.
//
//   - observing: adopt the f+1-vouched checkpoint (certificate-verified),
//     pull the snapshot through the ordinary state-transfer path
//     (digest-checked against the f+1-signed state digest), and process
//     traffic passively: deliver, decide, execute, record snapshots. We
//     send no proposals, echoes, certify shares, fast-path votes, commit
//     broadcasts, checkpoint shares, or view-change messages. The silence
//     is the safety argument: any promise the pre-crash incarnation made
//     (WILL_COMMIT, CERTIFY) concerns slots at or below the sync window;
//     by staying mute until a checkpoint STRICTLY past the sync point is
//     stable and locally executed, every slot we could have promised on
//     is pruned before we speak again, so amnesia cannot become
//     equivocation.
//
//   - resumed: re-declare our view (a SEAL_VIEW frame, accepted by the
//     relaxed validator since peers' frozen record of our pre-crash view
//     may differ) and rebroadcast the stable checkpoint as the first
//     frames of the reborn channel, then participate normally. One
//     residual guard: we never lead the view we resumed in (noLeadView),
//     because peers may hold a pre-crash prepare of ours for a still-live
//     slot in that view and would flag an innocent re-proposal as
//     equivocation. The followers' suspicion timers rotate leadership
//     past us if the cluster is otherwise idle.
//
// Peers deliberately do NOT reset the consensus-level record they keep
// about us (state[p], byzBlocked): those are the equivocation backstops,
// and a Byzantine replica faking a restart must not be able to launder
// its history through a JOIN probe.

type joinPhase int

const (
	joinNone joinPhase = iota
	joinProbing
	joinObserving
)

// joinAnswer is one peer's claim about the current sync point.
type joinAnswer struct {
	view View
	cp   Checkpoint
}

// joinRetryInterval paces probe rebroadcasts and snapshot-pull retries.
// Comfortably above a cluster round-trip, far below the suspicion timeout.
const joinRetryInterval = 2 * sim.Millisecond

// observing reports whether this replica is in its rejoin window (probing
// or observing) and must stay silent on all consensus channels.
func (r *Replica) observing() bool { return r.joinPhase != joinNone }

// Recovering reports whether the replica is still in its cold-rejoin
// window (exported for harnesses and operators).
func (r *Replica) Recovering() bool { return r.observing() }

// startColdJoin enters the probing phase. Called from NewReplica when
// Config.ColdJoin is set.
func (r *Replica) startColdJoin() {
	r.joinPhase = joinProbing
	// The memory nodes survived our crash, so our own registers in our
	// own group still hold high pre-crash identifiers that would alias or
	// conflict with the reborn k=1.. stream. Overwrite them with garbage
	// (readers skip undecodable entries as Byzantine noise). Our stale
	// registers in other groups are harmless: those streams' identifiers
	// only grow past the recorded values, and lower-k entries are ignored.
	r.groups[r.cfg.Self].ResetChannel()
	r.sendJoinProbe()
}

// sendJoinProbe broadcasts the JOIN probe and re-arms itself until f+1
// matching answers arrive. Probes are idempotent at peers: channel resets
// happen only when the nonce increases, answers are sent every time.
func (r *Replica) sendJoinProbe() {
	if r.stopped || r.joinPhase != joinProbing {
		return
	}
	w := wire.NewWriter(16)
	w.U8(tagJoinProbe)
	w.U64(r.cfg.JoinNonce)
	frame := w.Finish()
	for _, p := range r.cfg.Replicas {
		if p == r.cfg.Self {
			continue
		}
		r.rt.Send(p, router.ChanDirect, frame)
	}
	r.joinProbeTimer = r.proc.After(joinRetryInterval, r.sendJoinProbe)
}

// onJoinProbe handles a restarted replica's probe: rewind every channel we
// hold for it (first probe of this incarnation only), then answer with our
// current view and stable checkpoint.
func (r *Replica) onJoinProbe(from ids.ID, rd *wire.Reader) {
	nonce := rd.U64()
	if rd.Done() != nil || r.cfg.indexOf(from) < 0 || from == r.cfg.Self {
		return
	}
	if nonce > r.peerJoinNonce[from] {
		r.peerJoinNonce[from] = nonce
		r.resetPeerChannels(from)
	}
	w := wire.NewWriter(256)
	w.U8(tagJoinAns)
	w.U64(nonce)
	w.U64(uint64(r.view))
	r.chkpt.encode(w)
	r.rt.Send(from, router.ChanDirect, w.Finish())
}

// resetPeerChannels rewinds all local communication state for a reborn
// peer: receiver rings (so idx-0 frames are accepted again), the CTBcast
// channel it broadcasts on (locks, deliveries, FIFO cursor), our LOCKED
// echo state for it in every group, and — crucially — the sender-side ack
// floors our broadcasters hold for it. Without the ack reset an idle
// channel would never re-push its retained tail (including the summary
// certificate that heals the joiner's FIFO gap), and the joiner would
// stall forever on any channel that happened to be quiet.
func (r *Replica) resetPeerChannels(p ids.ID) {
	r.hub.ResetPeer(p)
	for _, id := range sortedIDs(r.groups) {
		g := r.groups[id]
		if id == p {
			g.ResetChannel()
		}
		g.ResetMember(p)
	}
	r.auxOut.ResetReceiver(p)
}

// onJoinAns collects sync-point answers. f+1 matching (view, seq, digest)
// tuples fix the sync point; the adopted certificate still has to verify,
// and we take it from the first answer in replica order whose cert checks
// out, so a Byzantine answer with a correct tuple but garbage signatures
// cannot wedge the join.
func (r *Replica) onJoinAns(from ids.ID, rd *wire.Reader) {
	if r.joinPhase != joinProbing || r.cfg.indexOf(from) < 0 {
		return
	}
	nonce := rd.U64()
	view := View(rd.U64())
	cp, err := decodeCheckpoint(rd)
	if err != nil || rd.Done() != nil || nonce != r.cfg.JoinNonce {
		return
	}
	r.joinAnswers[from] = joinAnswer{view: view, cp: cp}
	matching := 0
	for _, a := range r.joinAnswers {
		if a.view == view && a.cp.Seq == cp.Seq && a.cp.StateDigest == cp.StateDigest {
			matching++
		}
	}
	if matching < r.cfg.F+1 {
		return
	}
	for _, p := range sortedIDs(r.joinAnswers) {
		a := r.joinAnswers[p]
		if a.view != view || a.cp.Seq != cp.Seq || a.cp.StateDigest != cp.StateDigest {
			continue
		}
		if a.cp.Seq == 0 || r.verifyCheckpointCert(&a.cp) {
			r.adoptSyncPoint(view, a.cp)
			return
		}
	}
}

// adoptSyncPoint transitions probing -> observing at the f+1-vouched
// (view, checkpoint) pair.
func (r *Replica) adoptSyncPoint(v View, cp Checkpoint) {
	r.joinPhase = joinObserving
	r.joinSyncSeq = cp.Seq
	r.joinProbeTimer.Cancel()
	r.joinAnswers = make(map[ids.ID]joinAnswer)
	if v > r.view {
		r.view = v
	}
	if cp.Seq > 0 {
		// Observe-gated: adopts + prunes + starts the snapshot pull, but
		// does not rebroadcast or pump proposals.
		r.maybeCheckpoint(cp)
	}
	r.armJoinPull()
}

// armJoinPull retries the snapshot pull while observing and behind the
// stable checkpoint. bringUpToSpeed already asked the lowest-ID signer
// once; the retry rotates through all certificate signers so one crashed
// or Byzantine signer cannot stall the join.
func (r *Replica) armJoinPull() {
	if r.stopped || r.joinPhase != joinObserving || r.lastApplied >= r.chkpt.Seq {
		return
	}
	if r.joinPullTimer.Pending() {
		return
	}
	r.joinPullTimer = r.proc.After(joinRetryInterval, func() {
		if r.stopped || r.joinPhase != joinObserving || r.lastApplied >= r.chkpt.Seq {
			return
		}
		signers := make([]ids.ID, 0, len(r.chkpt.Sigs))
		for _, p := range sortedIDs(r.chkpt.Sigs) {
			if p != r.cfg.Self {
				signers = append(signers, p)
			}
		}
		if len(signers) > 0 {
			p := signers[r.joinPullTries%len(signers)]
			r.joinPullTries++
			w := wire.NewWriter(16)
			w.U8(tagStateReq)
			w.U64(uint64(r.chkpt.Seq))
			r.rt.Send(p, router.ChanDirect, w.Finish())
		}
		r.armJoinPull()
	})
}

// maybeResumeFromJoin ends the observe window once a checkpoint STRICTLY
// past the sync point is stable AND locally executed. Strictness is what
// guarantees every slot the pre-crash incarnation could have voted on has
// been pruned cluster-wide before we speak again.
func (r *Replica) maybeResumeFromJoin() {
	if r.joinPhase != joinObserving || r.chkpt.Seq <= r.joinSyncSeq || r.lastApplied < r.chkpt.Seq {
		return
	}
	r.resumeParticipation()
}

// resumeParticipation re-enters normal operation. The first frames of the
// reborn channel re-declare our view and stable checkpoint so peers'
// frozen record of our pre-crash state is superseded (the checkpoint seq
// is provably above anything we broadcast pre-crash, so their strict
// Supersedes check passes).
func (r *Replica) resumeParticipation() {
	r.joinPhase = joinNone
	r.joinPullTimer.Cancel()
	r.Rejoins++
	r.noLeadView = r.view
	r.noLeadSet = true
	w := wire.NewWriter(16)
	w.U8(tagSealView)
	w.U64(uint64(r.view))
	r.groups[r.cfg.Self].Broadcast(w.Finish())
	w = wire.NewWriter(256)
	w.U8(tagCheckpoint)
	r.chkpt.encode(w)
	r.groups[r.cfg.Self].Broadcast(w.Finish())
	r.reprocessPrepares()
	r.armProgressTimer()
}
