package consensus

// White-box tests of the Byzantine message checks (Algorithm 5) and the
// pieces of the view-change machinery that fault injection exercises.

import (
	"fmt"
	"testing"

	"repro/internal/app"
	"repro/internal/ids"
	"repro/internal/memnode"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/wire"
	"repro/internal/xcrypto"
)

// wbRig builds three wired replicas with white-box access.
type wbRig struct {
	eng  *sim.Engine
	net  *simnet.Network
	reg  *xcrypto.Registry
	reps []*Replica
}

func newWBRig(t *testing.T) *wbRig {
	t.Helper()
	rig := &wbRig{eng: sim.NewEngine(1)}
	rig.net = simnet.New(rig.eng, simnet.RDMAOptions())
	repIDs := []ids.ID{0, 1, 2}
	memIDs := []ids.ID{100, 101, 102}
	var mns []*memnode.Node
	for i, id := range memIDs {
		rt := router.New(rig.net.AddNode(id, fmt.Sprintf("mem%d", i)))
		mns = append(mns, memnode.New(rt))
	}
	rig.reg = xcrypto.NewRegistry(2, repIDs)
	cfg := func(self ids.ID) Config {
		return Config{
			Self: self, Replicas: repIDs, F: 1, MemNodes: memIDs, Fm: 1,
			Window: 32, Tail: 16, MsgCap: 1024,
			FastPath: true, EchoTimeout: 50 * sim.Microsecond,
			App: app.NewFlip(),
		}
	}
	AllocateCluster(cfg(0), mns)
	for _, id := range repIDs {
		rt := router.New(rig.net.AddNode(id, fmt.Sprintf("r%d", id)))
		rig.reps = append(rig.reps, NewReplica(cfg(id), Deps{RT: rt, Registry: rig.reg}))
	}
	return rig
}

func (rig *wbRig) stop() {
	for _, r := range rig.reps {
		r.Stop()
	}
}

func TestValidatePrepareFromNonLeaderRejected(t *testing.T) {
	rig := newWBRig(t)
	defer rig.stop()
	r := rig.reps[0]
	// Replica 1 is not the leader of view 0 but "broadcasts" a PREPARE.
	pr := Prepare{View: 0, Slot: 0, Req: Request{Client: 200, Num: 1, Payload: []byte("x")}}
	if r.validateMsg(ids.ID(1), encodePrepare(pr)) {
		t.Fatal("PREPARE from non-leader validated")
	}
	// From the actual leader it passes.
	if !r.validateMsg(ids.ID(0), encodePrepare(pr)) {
		t.Fatal("legitimate PREPARE rejected")
	}
}

func TestValidatePrepareOutsideWindowRejected(t *testing.T) {
	rig := newWBRig(t)
	defer rig.stop()
	r := rig.reps[1]
	pr := Prepare{View: 0, Slot: 999, Req: NoOp()} // window is [0,31]
	if r.validateMsg(ids.ID(0), encodePrepare(pr)) {
		t.Fatal("out-of-window PREPARE validated")
	}
}

func TestValidateDuplicatePrepareRejected(t *testing.T) {
	rig := newWBRig(t)
	defer rig.stop()
	r := rig.reps[1]
	pr := Prepare{View: 0, Slot: 3, Req: Request{Client: 200, Num: 1, Payload: []byte("a")}}
	if !r.validateMsg(ids.ID(0), encodePrepare(pr)) {
		t.Fatal("first PREPARE rejected")
	}
	r.onPrepare(ids.ID(0), pr) // record it in state[0]
	// A second, conflicting PREPARE for the same slot in the same view is
	// equivocation at the consensus level.
	pr2 := Prepare{View: 0, Slot: 3, Req: Request{Client: 200, Num: 2, Payload: []byte("b")}}
	if r.validateMsg(ids.ID(0), encodePrepare(pr2)) {
		t.Fatal("consensus-level equivocation validated")
	}
}

func TestValidateCommitNeedsRealCertificate(t *testing.T) {
	rig := newWBRig(t)
	defer rig.stop()
	r := rig.reps[0]
	req := Request{Client: 200, Num: 1, Payload: []byte("x")}
	dg := req.Digest()

	// Forged certificate: garbage signatures.
	forged := CommitCert{View: 0, Slot: 0, Req: req, Sigs: map[ids.ID]xcrypto.Signature{
		1: make(xcrypto.Signature, xcrypto.SigLen),
		2: make(xcrypto.Signature, xcrypto.SigLen),
	}}
	w := wire.NewWriter(256)
	w.U8(tagCommit)
	forged.encode(w)
	if r.validateMsg(ids.ID(1), w.Finish()) {
		t.Fatal("forged COMMIT certificate validated")
	}

	// Real certificate: f+1 genuine CERTIFY signatures.
	proc := sim.NewProc(rig.eng, "signer")
	real := CommitCert{View: 0, Slot: 0, Req: req, Sigs: map[ids.ID]xcrypto.Signature{
		1: rig.reg.Signer(1).Sign(proc, certifyPayload(0, 0, dg)),
		2: rig.reg.Signer(2).Sign(proc, certifyPayload(0, 0, dg)),
	}}
	w2 := wire.NewWriter(256)
	w2.U8(tagCommit)
	real.encode(w2)
	if !r.validateMsg(ids.ID(1), w2.Finish()) {
		t.Fatal("genuine COMMIT certificate rejected")
	}
}

func TestValidateCheckpointNeedsCertAndProgress(t *testing.T) {
	rig := newWBRig(t)
	defer rig.stop()
	r := rig.reps[0]
	// Non-superseding checkpoint (seq 0 == genesis).
	w := wire.NewWriter(64)
	w.U8(tagCheckpoint)
	(&Checkpoint{Seq: 0}).encode(w)
	if r.validateMsg(ids.ID(1), w.Finish()) {
		t.Fatal("non-superseding CHECKPOINT validated")
	}
	// Superseding but uncertified.
	w2 := wire.NewWriter(64)
	w2.U8(tagCheckpoint)
	(&Checkpoint{Seq: 32}).encode(w2)
	if r.validateMsg(ids.ID(1), w2.Finish()) {
		t.Fatal("uncertified CHECKPOINT validated")
	}
}

func TestValidateSealViewMonotonic(t *testing.T) {
	rig := newWBRig(t)
	defer rig.stop()
	r := rig.reps[0]
	mkSeal := func(v View) []byte {
		w := wire.NewWriter(16)
		w.U8(tagSealView)
		w.U64(uint64(v))
		return w.Finish()
	}
	if !r.validateMsg(ids.ID(1), mkSeal(1)) {
		t.Fatal("legitimate SEAL_VIEW rejected")
	}
	r.onSealView(ids.ID(1), 2)
	// Non-increasing seals stay wire-valid (a cold-rejoined replica's
	// reborn channel re-declares a view peers may already have recorded),
	// but onSealView must treat them as no-ops: the per-peer view must not
	// regress and newViewUsed must survive, keeping a second NEW_VIEW in
	// the same view Byzantine.
	if !r.validateMsg(ids.ID(1), mkSeal(2)) {
		t.Fatal("re-declared SEAL_VIEW rejected at the wire")
	}
	st := r.state[ids.ID(1)]
	st.newViewUsed = true
	r.onSealView(ids.ID(1), 2)
	if st.view != 2 || !st.newViewUsed {
		t.Fatalf("equal SEAL_VIEW not a no-op: view=%d newViewUsed=%v", st.view, st.newViewUsed)
	}
	r.onSealView(ids.ID(1), 1)
	if st.view != 2 || !st.newViewUsed {
		t.Fatalf("regressing SEAL_VIEW not a no-op: view=%d newViewUsed=%v", st.view, st.newViewUsed)
	}
	if r.validateMsg(ids.ID(1), []byte{tagSealView}) {
		t.Fatal("truncated SEAL_VIEW validated")
	}
}

func TestValidateUnknownTagRejected(t *testing.T) {
	rig := newWBRig(t)
	defer rig.stop()
	if rig.reps[0].validateMsg(ids.ID(1), []byte{0xEE, 1, 2, 3}) {
		t.Fatal("unknown message tag validated")
	}
}

func TestMustProposeSelectsHighestView(t *testing.T) {
	rig := newWBRig(t)
	defer rig.stop()
	r := rig.reps[0]
	mkCert := func(slot Slot, v View, payload string) ReplicaCert {
		cs := CertifiedState{
			View:       3,
			Checkpoint: Checkpoint{Seq: 0},
			Commits: map[Slot]CommitCert{
				slot: {View: v, Slot: slot, Req: Request{Client: 200, Num: uint64(v), Payload: []byte(payload)}},
			},
		}
		return ReplicaCert{About: 0, StateBytes: encodeCertifiedState(&cs)}
	}
	certs := []ReplicaCert{mkCert(5, 1, "old"), mkCert(5, 2, "new")}
	req, any := r.mustPropose(5, certs)
	if any || string(req.Payload) != "new" {
		t.Fatalf("mustPropose picked %q (any=%v), want highest-view commit", req.Payload, any)
	}
	// Slot without commits but below the max open slot: noop.
	req, any = r.mustPropose(3, certs)
	if any || !req.IsNoOp() {
		t.Fatalf("uncommitted open slot: %+v any=%v", req, any)
	}
	// Slot beyond everything: free for new proposals.
	if _, any = r.mustPropose(6, certs); !any {
		t.Fatal("slot beyond certified range should be Any")
	}
}

func TestCertifySigCache(t *testing.T) {
	rig := newWBRig(t)
	defer rig.stop()
	r := rig.reps[0]
	req := Request{Client: 200, Num: 1, Payload: []byte("x")}
	dg := req.Digest()
	proc := sim.NewProc(rig.eng, "signer")
	sig := rig.reg.Signer(1).Sign(proc, certifyPayload(0, 0, dg))
	if !r.verifyCertifySig(0, 0, dg, 1, sig) {
		t.Fatal("valid share rejected")
	}
	busy := r.proc.BusyUntil()
	// Second verification must hit the cache: no crypto charge.
	if !r.verifyCertifySig(0, 0, dg, 1, sig) {
		t.Fatal("cached share rejected")
	}
	if r.proc.BusyUntil() != busy {
		t.Fatal("cache miss: crypto charged twice for the same share")
	}
	// A corrupted signature must not hit the cache.
	bad := append(xcrypto.Signature(nil), sig...)
	bad[0] ^= 1
	if r.verifyCertifySig(0, 0, dg, 1, bad) {
		t.Fatal("corrupted share accepted")
	}
}

func TestStateTransferRejectsForgedSnapshot(t *testing.T) {
	rig := newWBRig(t)
	defer rig.stop()
	r := rig.reps[0]
	// Pretend a checkpoint at 32 with a known digest is stable.
	var dg [xcrypto.DigestLen]byte
	good := []byte("genuine-snapshot")
	dg = xcrypto.DigestNoCharge(good)
	r.chkpt = Checkpoint{Seq: 32, StateDigest: dg}
	// A Byzantine replica responds with a forged snapshot.
	w := wire.NewWriter(64)
	w.U8(tagStateResp)
	w.U64(32)
	w.Bytes([]byte("forged-snapshot"))
	frame := w.Finish()
	r.onDirect(ids.ID(1), frame)
	if r.lastApplied >= 32 {
		t.Fatal("forged snapshot adopted")
	}
	// The genuine one is accepted.
	w2 := wire.NewWriter(64)
	w2.U8(tagStateResp)
	w2.U64(32)
	w2.Bytes(good)
	r.onDirect(ids.ID(1), w2.Finish())
	if r.lastApplied != 32 {
		t.Fatalf("genuine snapshot not adopted: lastApplied=%d", r.lastApplied)
	}
}

func TestClientImpersonationRejected(t *testing.T) {
	rig := newWBRig(t)
	defer rig.stop()
	r := rig.reps[0]
	// A request claiming to be from client 200 but sent by node 1.
	req := Request{Client: 200, Num: 1, Payload: []byte("fake")}
	w := wire.NewWriter(64)
	w.U8(tagRequest)
	req.encode(w)
	r.onRPC(ids.ID(1), w.Finish())
	if len(r.reqStore) != 0 {
		t.Fatal("impersonated request stored")
	}
}
