package consensus

import (
	"repro/internal/app"
	"repro/internal/ids"
	"repro/internal/router"
	"repro/internal/wire"
)

// This file is the replica side of commit-phase recovery: the staged-
// transaction hint scan. A 2PC participant that voted yes and then missed
// the commit fan-out past the driver's bounded retry backoff holds its
// locks with no client retaining any transaction state (shard/txn.go's
// inherent blocking case). The recovery path is pull-based: a recovery
// agent periodically asks each replica for its prepared-but-undecided
// transactions (tagStagedQuery -> tagStagedResp, the coordinator group
// stamped on each by the prepare envelope), cross-checks the hints across
// f+1 replicas of the group — a lone Byzantine replica cannot fabricate a
// stranded transaction — and then drives ordered OpTxnQueryDecision /
// OpTxnCommit / OpTxnAbort commands that resolve it on every replica.
//
// The hint scan itself is advisory and unordered (any replica can answer
// from its current state); everything that mutates state goes through
// consensus as ordinary ordered commands, so recovery can never diverge
// replicas. The agent lives in internal/shard (RecoveryAgent).

// stagedHintCap bounds how many staged-transaction hints one response
// carries; a replica with more stranded transactions than this answers the
// oldest ones first and the next sweep picks up the rest.
const stagedHintCap = 256

// onStagedQuery answers a recovery agent's hint scan with this replica's
// prepared-but-undecided transactions (empty unless the application is
// TxnRecoverable). The nonce is echoed so the agent can match responses to
// its sweep round.
func (r *Replica) onStagedQuery(from ids.ID, rd *wire.Reader) {
	nonce := rd.U64()
	if rd.Done() != nil {
		return
	}
	var staged []app.StagedTxn
	if rec, ok := r.cfg.App.(app.TxnRecoverable); ok {
		staged = rec.StagedTxns()
	}
	if len(staged) > stagedHintCap {
		staged = staged[:stagedHintCap]
	}
	w := wire.GetWriter(16 + 16*len(staged))
	w.U8(tagStagedResp)
	w.U64(nonce)
	w.Uvarint(uint64(len(staged)))
	for _, tx := range staged {
		w.U64(tx.Txid)
		w.Uvarint(tx.Coord)
	}
	r.rt.Send(from, router.ChanDirect, w.Finish())
	wire.PutWriter(w)
}

// EncodeStagedQuery builds the hint-scan request a recovery agent sends a
// replica on ChanDirect.
func EncodeStagedQuery(nonce uint64) []byte {
	w := wire.NewWriter(16)
	w.U8(tagStagedQuery)
	w.U64(nonce)
	return w.Finish()
}

// DecodeStagedResp parses a replica's hint-scan response (a ChanDirect
// frame). ok=false for anything that is not a well-formed tagStagedResp.
func DecodeStagedResp(payload []byte) (nonce uint64, staged []app.StagedTxn, ok bool) {
	rd := wire.NewReader(payload)
	if rd.U8() != tagStagedResp {
		return 0, nil, false
	}
	nonce = rd.U64()
	n := rd.Uvarint()
	if n > stagedHintCap || rd.Err() != nil {
		return 0, nil, false
	}
	staged = make([]app.StagedTxn, 0, n)
	for i := uint64(0); i < n; i++ {
		tx := app.StagedTxn{Txid: rd.U64(), Coord: rd.Uvarint()}
		staged = append(staged, tx)
	}
	if rd.Done() != nil {
		return 0, nil, false
	}
	return nonce, staged, true
}
