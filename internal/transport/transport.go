// Package transport defines the authenticated point-to-point link contract
// every fabric backend of the reproduction satisfies. The paper assumes
// links that are authenticated and tamper-proof (§2.4); this package pins
// that assumption down as a Go interface so the layers above it (router,
// msgring, consensus, shard) are fabric-agnostic:
//
//   - internal/simnet implements it on the deterministic discrete-event
//     engine in virtual time — the reproducibility/CI harness.
//   - internal/nettrans implements it over real TCP sockets in wall-clock
//     time — the "system that serves traffic" backend.
//
// The contract is deliberately minimal: Send(to, payload) is asynchronous,
// unacknowledged and may drop under overload or partition (tail semantics:
// the newest traffic wins, exactly like the message-ring overwrite model);
// delivery invokes the endpoint's handler with the authenticated sender
// identity, in FIFO order per directed link, without duplicates. Every
// retransmission/recovery mechanism above (tbcast, CTBcast, 2PC fan-outs)
// is built on precisely these semantics, which is why one interface can
// carry both a lossy simulated fabric and a reconnecting socket backend.
package transport

import (
	"repro/internal/ids"
	"repro/internal/sim"
)

// Handler consumes a message delivered to an endpoint. from is the
// authenticated sender identity: a backend must guarantee it cannot be
// spoofed by another node of the deployment (simnet by construction,
// nettrans by its closed static peer table — see that package's trust
// model notes).
type Handler func(from ids.ID, payload []byte)

// Endpoint is one node's attachment to the fabric. Implementations must
// deliver messages on the engine goroutine of the endpoint's process, so
// protocol handlers never race with each other.
//
// The payload slice passed to Send is delivered (or copied) as-is: senders
// must not mutate a buffer after sending it. Delivered payloads are
// private to the receiver: the backend never recycles or rewrites them.
type Endpoint interface {
	// ID returns the node's identity.
	ID() ids.ID
	// Proc returns the simulated/real process the endpoint's handler runs
	// on (its engine drives timers for the protocol layers above).
	Proc() *sim.Proc
	// SetHandler installs the message handler. Messages delivered before
	// SetHandler are dropped.
	SetHandler(h Handler)
	// Send transmits payload to the node identified by to. It never
	// blocks: under overload or partition the backend drops (oldest
	// first) rather than stall the caller.
	Send(to ids.ID, payload []byte)
}

// Fabric creates endpoints bound to one engine. Deployment layers
// (cluster, shard) consume this to stay backend-agnostic: the default is
// the deterministic simnet fabric, and a real-socket deployment injects a
// nettrans-backed fabric instead.
type Fabric interface {
	// Engine returns the engine all of the fabric's endpoints run on.
	// A Fabric with a nil engine is unusable; deployment layers reject it
	// at Normalize/validate time with a clear error.
	Engine() *sim.Engine
	// NewEndpoint creates the endpoint for node id. name is a diagnostic
	// label for the node's process. Creating the same id twice errors.
	NewEndpoint(id ids.ID, name string) (Endpoint, error)
}
