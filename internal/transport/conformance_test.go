// Transport conformance suite: one table-driven contract test run against
// both fabric backends. The contract (package doc): FIFO-with-gaps per
// directed link, authenticated sender identity, no duplicates, bounded
// (tail-drop) queueing under overload, and delivery resumes after a
// partition heals — simnet by construction, nettrans by reconnect with
// exponential backoff.
package transport_test

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/byz"
	"repro/internal/ids"
	"repro/internal/nettrans"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// recorder collects deliveries on one endpoint, concurrency-safe (nettrans
// delivers on a host-loop goroutine).
type recorder struct {
	mu   sync.Mutex
	got  map[ids.ID][]uint64 // per sender, message indices in arrival order
	seen int
}

func newRecorder() *recorder { return &recorder{got: make(map[ids.ID][]uint64)} }

func (r *recorder) handler(from ids.ID, payload []byte) {
	if len(payload) != 16 {
		return
	}
	// payload: u64 sender echo | u64 index
	echo := ids.ID(binary.LittleEndian.Uint64(payload[:8]))
	idx := binary.LittleEndian.Uint64(payload[8:])
	r.mu.Lock()
	defer r.mu.Unlock()
	if echo != from {
		// Identity violation recorded as a poisoned index.
		idx = ^uint64(0)
	}
	r.got[from] = append(r.got[from], idx)
	r.seen++
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen
}

func (r *recorder) from(id ids.ID) []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]uint64(nil), r.got[id]...)
}

func msg(from ids.ID, idx uint64) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b[:8], uint64(from))
	binary.LittleEndian.PutUint64(b[8:], idx)
	return b
}

// world abstracts one assembled fabric of n endpoints (ids 0..n-1) so the
// same contract assertions drive both backends.
type world interface {
	endpoint(i int) transport.Endpoint
	// send transmits from endpoint i to endpoint j (on whatever goroutine
	// the backend requires).
	send(i, j int, payload []byte)
	// settle drives the world until cond holds or the backend gives up;
	// reports whether cond held.
	settle(cond func() bool) bool
	// partition cuts both directions between i and j; heal restores them.
	partition(i, j int)
	heal(i, j int)
	// overloadCapacity returns the per-link queue bound, or 0 when the
	// backend queues unboundedly (simnet, whose partitions drop instead).
	overloadCapacity() int
	close()
}

// --- simnet world -----------------------------------------------------

type simWorld struct {
	eng  *simnet.Network
	e    *sim.Engine
	eps  []transport.Endpoint
	recs []*recorder
}

func newSimWorld(t *testing.T, n int) *simWorld {
	return newSimWorldWrapped(t, n, nil)
}

// newSimWorldWrapped builds the simnet world with an optional fabric
// wrapper interposed — the byz-wrapped conformance entry proves the
// Byzantine fault-injection layer is contract-transparent for honest
// traffic.
func newSimWorldWrapped(t *testing.T, n int, wrap func(transport.Fabric) transport.Fabric) *simWorld {
	e := sim.NewEngine(7)
	net := simnet.New(e, simnet.RDMAOptions())
	w := &simWorld{eng: net, e: e}
	var fab transport.Fabric = simnet.AsFabric(net)
	if wrap != nil {
		fab = wrap(fab)
	}
	for i := 0; i < n; i++ {
		ep, err := fab.NewEndpoint(ids.ID(i), fmt.Sprintf("n%d", i))
		if err != nil {
			t.Fatalf("NewEndpoint: %v", err)
		}
		rec := newRecorder()
		ep.SetHandler(rec.handler)
		w.eps = append(w.eps, ep)
		w.recs = append(w.recs, rec)
	}
	return w
}

func (w *simWorld) endpoint(i int) transport.Endpoint { return w.eps[i] }
func (w *simWorld) send(i, j int, payload []byte)     { w.eps[i].Send(ids.ID(j), payload) }
func (w *simWorld) settle(cond func() bool) bool {
	for steps := 0; steps < 1_000_000; steps++ {
		if cond() {
			return true
		}
		if !w.e.Step() {
			return cond()
		}
	}
	return cond()
}
func (w *simWorld) partition(i, j int)    { w.eng.Partition(ids.ID(i), ids.ID(j)) }
func (w *simWorld) heal(i, j int)         { w.eng.Heal(ids.ID(i), ids.ID(j)) }
func (w *simWorld) overloadCapacity() int { return 0 }
func (w *simWorld) close()                {}

// --- nettrans world ---------------------------------------------------

type netWorld struct {
	hosts []*nettrans.Host
	nets  []*nettrans.Net
	eps   []transport.Endpoint
	recs  []*recorder
	table *nettrans.AddrTable

	mu      sync.Mutex
	blocked map[[2]int]bool

	queueSlots int
}

func newNetWorld(t *testing.T, n, queueSlots int) *netWorld {
	w := &netWorld{
		table:      nettrans.NewAddrTable(nil),
		blocked:    make(map[[2]int]bool),
		queueSlots: queueSlots,
	}
	for i := 0; i < n; i++ {
		i := i
		h := nettrans.NewHost(int64(i))
		resolve := func(id ids.ID) (string, bool) {
			w.mu.Lock()
			cut := w.blocked[pairOf(i, int(id))]
			w.mu.Unlock()
			if cut {
				return "", false
			}
			return w.table.Resolve(id)
		}
		nt, err := nettrans.Listen(h, nettrans.Options{
			ListenAddr:     "127.0.0.1:0",
			Resolve:        resolve,
			QueueSlots:     queueSlots,
			DialBackoffMin: time.Millisecond,
			DialBackoffMax: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("Listen: %v", err)
		}
		ep, err := nt.NewEndpoint(ids.ID(i), fmt.Sprintf("n%d", i))
		if err != nil {
			t.Fatalf("NewEndpoint: %v", err)
		}
		rec := newRecorder()
		ep.SetHandler(rec.handler)
		w.table.Set(ids.ID(i), nt.Addr())
		w.hosts = append(w.hosts, h)
		w.nets = append(w.nets, nt)
		w.eps = append(w.eps, ep)
		w.recs = append(w.recs, rec)
	}
	for _, h := range w.hosts {
		h.Start()
	}
	return w
}

func pairOf(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

func (w *netWorld) endpoint(i int) transport.Endpoint { return w.eps[i] }
func (w *netWorld) send(i, j int, payload []byte)     { w.eps[i].Send(ids.ID(j), payload) }
func (w *netWorld) settle(cond func() bool) bool {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}
func (w *netWorld) partition(i, j int) {
	w.mu.Lock()
	w.blocked[pairOf(i, j)] = true
	w.mu.Unlock()
	// Dials now fail; existing connections are torn down explicitly, as a
	// real partition would sever them.
	w.nets[i].BreakConns()
	w.nets[j].BreakConns()
}
func (w *netWorld) heal(i, j int) {
	w.mu.Lock()
	delete(w.blocked, pairOf(i, j))
	w.mu.Unlock()
}
func (w *netWorld) overloadCapacity() int { return w.queueSlots }
func (w *netWorld) close() {
	for _, nt := range w.nets {
		nt.Close()
	}
	for _, h := range w.hosts {
		h.Stop()
	}
}

// --- the contract -----------------------------------------------------

// netQueueSlots bounds each nettrans link ring. The delivery test's burst
// (k per link) must fit under it — frames sent before the first dial lands
// queue in the ring, and a ring smaller than the burst legally tail-drops.
// The overload test conversely bursts 4x past it to force drops.
const (
	netQueueSlots = 64
	overloadBurst = 4 * netQueueSlots
)

func conformanceWorlds(t *testing.T) map[string]func(t *testing.T, n int) (world, []*recorder) {
	return map[string]func(t *testing.T, n int) (world, []*recorder){
		"simnet": func(t *testing.T, n int) (world, []*recorder) {
			w := newSimWorld(t, n)
			return w, w.recs
		},
		"nettrans": func(t *testing.T, n int) (world, []*recorder) {
			w := newNetWorld(t, n, netQueueSlots)
			return w, w.recs
		},
		// The Byzantine fault-injection wrapper must be invisible to honest
		// traffic: every endpoint goes through byz (node 0 even carries an
		// explicit identity policy), and the full contract — per-link FIFO,
		// sender identity, no duplicates, heal-resumes — must hold verbatim.
		"byz-wrapped": func(t *testing.T, n int) (world, []*recorder) {
			w := newSimWorldWrapped(t, n, func(inner transport.Fabric) transport.Fabric {
				f := byz.Wrap(inner)
				f.Infect(ids.ID(0), byz.Passthrough{})
				return f
			})
			return w, w.recs
		},
	}
}

// assertLinkFIFO checks the deliveries rec saw from sender: strictly
// increasing indices (FIFO with gaps, no duplicates) and no identity
// poison markers.
func assertLinkFIFO(t *testing.T, rec *recorder, sender ids.ID) {
	t.Helper()
	idxs := rec.from(sender)
	var last uint64
	for k, idx := range idxs {
		if idx == ^uint64(0) {
			t.Fatalf("sender identity forged on delivery %d from %v", k, sender)
		}
		if k > 0 && idx <= last {
			t.Fatalf("link %v FIFO violated: index %d after %d", sender, idx, last)
		}
		last = idx
	}
}

func TestTransportConformance(t *testing.T) {
	for name, build := range conformanceWorlds(t) {
		t.Run(name, func(t *testing.T) {
			t.Run("DeliveryAndIdentity", func(t *testing.T) {
				const n, k = 3, 20
				w, recs := build(t, n)
				defer w.close()
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						if i == j {
							continue
						}
						for m := 0; m < k; m++ {
							w.send(i, j, msg(ids.ID(i), uint64(m+1)))
						}
					}
				}
				want := k * (n - 1)
				ok := w.settle(func() bool {
					for _, r := range recs {
						if r.count() < want {
							return false
						}
					}
					return true
				})
				if !ok {
					for i, r := range recs {
						t.Logf("endpoint %d: %d/%d", i, r.count(), want)
					}
					t.Fatal("full pairwise delivery did not complete")
				}
				for j, r := range recs {
					for i := 0; i < n; i++ {
						if i == j {
							continue
						}
						assertLinkFIFO(t, r, ids.ID(i))
						if got := len(r.from(ids.ID(i))); got != k {
							t.Fatalf("endpoint %d got %d/%d msgs from %d", j, got, k, i)
						}
					}
				}
			})

			t.Run("TailDropUnderOverload", func(t *testing.T) {
				w, recs := build(t, 2)
				defer w.close()
				// Sever the link so nothing drains, then overload it.
				w.partition(0, 1)
				for m := 0; m < overloadBurst; m++ {
					w.send(0, 1, msg(0, uint64(m+1)))
				}
				w.heal(0, 1)
				// A post-heal marker must arrive: overload never wedges the
				// link permanently.
				const marker = overloadBurst + 1
				w.send(0, 1, msg(0, marker))
				ok := w.settle(func() bool {
					idxs := recs[1].from(0)
					return len(idxs) > 0 && idxs[len(idxs)-1] == marker
				})
				if !ok {
					t.Fatalf("post-overload marker never arrived (got %v)", recs[1].from(0))
				}
				assertLinkFIFO(t, recs[1], 0)
				if cap := w.overloadCapacity(); cap > 0 {
					// Bounded backends must have tail-dropped: at most the
					// newest `cap` frames (plus one the writer may have
					// popped before the partition bit) survive, and the
					// newest pre-marker frame must be among them.
					idxs := recs[1].from(0)
					burst := 0
					hasNewest := false
					for _, idx := range idxs {
						if idx <= overloadBurst {
							burst++
						}
						if idx == overloadBurst {
							hasNewest = true
						}
					}
					if burst > cap+1 {
						t.Fatalf("expected tail-drop to at most %d queued frames, %d delivered", cap+1, burst)
					}
					if !hasNewest {
						t.Fatalf("newest burst frame dropped: tail-drop must keep the newest (got %v)", idxs)
					}
				}
			})

			t.Run("ReconnectAfterPartition", func(t *testing.T) {
				w, recs := build(t, 2)
				defer w.close()
				w.send(0, 1, msg(0, 1))
				if !w.settle(func() bool { return recs[1].count() >= 1 }) {
					t.Fatal("pre-partition delivery failed")
				}
				w.partition(0, 1)
				w.send(0, 1, msg(0, 2)) // may be lost or queued; both are legal
				w.heal(0, 1)
				w.send(0, 1, msg(0, 3))
				ok := w.settle(func() bool {
					idxs := recs[1].from(0)
					return len(idxs) > 0 && idxs[len(idxs)-1] == 3
				})
				if !ok {
					t.Fatalf("delivery did not resume after heal (got %v)", recs[1].from(0))
				}
				assertLinkFIFO(t, recs[1], 0)
			})
		})
	}
}
