package simnet

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/latmodel"
	"repro/internal/sim"
)

func twoNodes(t *testing.T, opts Options) (*sim.Engine, *Network, *Node, *Node) {
	t.Helper()
	e := sim.NewEngine(1)
	n := New(e, opts)
	a := n.AddNode(0, "a")
	b := n.AddNode(1, "b")
	return e, n, a, b
}

func TestDelivery(t *testing.T) {
	e, _, a, b := twoNodes(t, RDMAOptions())
	var gotFrom ids.ID = ids.None
	var gotPayload []byte
	b.SetHandler(func(from ids.ID, p []byte) { gotFrom, gotPayload = from, p })
	a.Send(1, []byte("hello"))
	e.Run()
	if gotFrom != 0 || string(gotPayload) != "hello" {
		t.Fatalf("delivery wrong: from=%v payload=%q", gotFrom, gotPayload)
	}
}

func TestDeliveryLatencyBounds(t *testing.T) {
	e, _, a, b := twoNodes(t, RDMAOptions())
	var at sim.Time = -1
	b.SetHandler(func(ids.ID, []byte) { at = e.Now() })
	payload := make([]byte, 1024)
	a.Send(1, payload)
	e.Run()
	min := latmodel.WireBase
	max := latmodel.WireBase + latmodel.PerByte(1024+64) + latmodel.WireJitter +
		2*latmodel.DispatchCost + sim.Microsecond
	if at < sim.Time(min) || at > sim.Time(max) {
		t.Fatalf("delivery at %v outside [%v, %v]", at, min, max)
	}
}

func TestLargerMessagesArriveLater(t *testing.T) {
	opts := RDMAOptions()
	opts.Jitter = 0
	e, _, a, b := twoNodes(t, opts)
	var times []sim.Time
	b.SetHandler(func(ids.ID, []byte) { times = append(times, e.Now()) })
	a.Send(1, make([]byte, 8192))
	e.Run()
	big := times[0]

	e2 := sim.NewEngine(1)
	n2 := New(e2, opts)
	a2 := n2.AddNode(0, "a")
	b2 := n2.AddNode(1, "b")
	var small sim.Time
	b2.SetHandler(func(ids.ID, []byte) { small = e2.Now() })
	a2.Send(1, make([]byte, 8))
	e2.Run()
	if big <= small {
		t.Fatalf("8KiB message (%v) not slower than 8B (%v)", big, small)
	}
}

func TestPartition(t *testing.T) {
	e, n, a, b := twoNodes(t, RDMAOptions())
	got := 0
	b.SetHandler(func(ids.ID, []byte) { got++ })
	n.Partition(0, 1)
	a.Send(1, []byte("x"))
	e.Run()
	if got != 0 {
		t.Fatal("partitioned message delivered")
	}
	if n.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", n.Dropped)
	}
	n.Heal(0, 1)
	a.Send(1, []byte("y"))
	e.Run()
	if got != 1 {
		t.Fatal("healed link did not deliver")
	}
	n.Partition(0, 1)
	n.HealAll()
	a.Send(1, []byte("z"))
	e.Run()
	if got != 2 {
		t.Fatal("HealAll did not heal")
	}
}

func TestPartitionSymmetric(t *testing.T) {
	_, n, _, _ := twoNodes(t, RDMAOptions())
	n.Partition(1, 0)
	if !n.Partitioned(0, 1) || !n.Partitioned(1, 0) {
		t.Fatal("partition not symmetric")
	}
}

func TestCrashedSenderSendsNothing(t *testing.T) {
	e, n, a, b := twoNodes(t, RDMAOptions())
	got := 0
	b.SetHandler(func(ids.ID, []byte) { got++ })
	a.Proc().Crash()
	a.Send(1, []byte("x"))
	e.Run()
	if got != 0 || n.MsgsSent != 0 {
		t.Fatal("crashed sender transmitted")
	}
}

func TestCrashedReceiverDropsDelivery(t *testing.T) {
	e, _, a, b := twoNodes(t, RDMAOptions())
	got := 0
	b.SetHandler(func(ids.ID, []byte) { got++ })
	a.Send(1, []byte("x"))
	b.Proc().Crash()
	e.Run()
	if got != 0 {
		t.Fatal("crashed receiver handled message")
	}
}

func TestPreGSTDropsAndDelays(t *testing.T) {
	opts := RDMAOptions()
	opts.GST = sim.Time(1 * sim.Millisecond)
	opts.AsyncExtraMax = 100 * sim.Microsecond
	opts.AsyncDropProb = 0.5
	e := sim.NewEngine(7)
	n := New(e, opts)
	a := n.AddNode(0, "a")
	b := n.AddNode(1, "b")
	got := 0
	b.SetHandler(func(ids.ID, []byte) { got++ })
	const sent = 200
	for i := 0; i < sent; i++ {
		a.Send(1, []byte("x"))
	}
	e.Run()
	if got == sent || got == 0 {
		t.Fatalf("pre-GST drop model inert: %d/%d delivered", got, sent)
	}
	if n.Dropped == 0 {
		t.Fatal("no drops recorded")
	}
}

func TestPostGSTNeverDrops(t *testing.T) {
	opts := RDMAOptions()
	opts.GST = 0
	opts.AsyncDropProb = 0.9
	e := sim.NewEngine(7)
	n := New(e, opts)
	a := n.AddNode(0, "a")
	b := n.AddNode(1, "b")
	got := 0
	b.SetHandler(func(ids.ID, []byte) { got++ })
	for i := 0; i < 100; i++ {
		a.Send(1, []byte("x"))
	}
	e.Run()
	if got != 100 {
		t.Fatalf("post-GST dropped messages: %d/100", got)
	}
}

func TestBroadcastSkipsSelf(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, RDMAOptions())
	nodes := make([]*Node, 3)
	counts := make([]int, 3)
	all := []ids.ID{0, 1, 2}
	for i := range nodes {
		i := i
		nodes[i] = n.AddNode(ids.ID(i), "n")
		nodes[i].SetHandler(func(ids.ID, []byte) { counts[i]++ })
	}
	nodes[0].Broadcast(all, []byte("x"))
	e.Run()
	if counts[0] != 0 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("broadcast counts = %v", counts)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, RDMAOptions())
	n.AddNode(0, "a")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddNode did not panic")
		}
	}()
	n.AddNode(0, "b")
}

func TestSendToUnknownDrops(t *testing.T) {
	// An unregistered destination is a crashed-and-removed host (see
	// RemoveNode): packets to it vanish like on a partitioned link — peers
	// and clients keep broadcasting to a dead replica until it rejoins, and
	// that must not take the sender down.
	e := sim.NewEngine(1)
	n := New(e, RDMAOptions())
	a := n.AddNode(0, "a")
	a.Send(99, []byte("x"))
	e.Run()
	if n.Dropped != 1 || n.MsgsSent != 1 {
		t.Fatalf("unknown-destination send: Dropped=%d MsgsSent=%d, want 1/1", n.Dropped, n.MsgsSent)
	}
}

func TestRemoveNodeRebind(t *testing.T) {
	// Remove-then-re-add rebinds an identity to a fresh process: in-flight
	// messages bound to the dead process die with it, later sends reach the
	// new one.
	e := sim.NewEngine(1)
	n := New(e, RDMAOptions())
	a := n.AddNode(0, "a")
	b := n.AddNode(1, "b1")
	got := 0
	a.Send(1, []byte("pre")) // in flight when b crashes
	b.Proc().Crash()
	n.RemoveNode(1)
	b2 := n.AddNode(1, "b2")
	b2.SetHandler(func(_ ids.ID, p []byte) { got++ })
	a.Send(1, []byte("post"))
	e.Run()
	if got != 1 {
		t.Fatalf("reborn node got %d messages, want 1 (pre-crash send must die)", got)
	}
}

func TestStatsAccounting(t *testing.T) {
	e, n, a, b := twoNodes(t, RDMAOptions())
	b.SetHandler(func(ids.ID, []byte) {})
	a.Send(1, make([]byte, 100))
	e.Run()
	if n.MsgsSent != 1 {
		t.Fatalf("MsgsSent = %d", n.MsgsSent)
	}
	if n.BytesSent != 100+64 {
		t.Fatalf("BytesSent = %d", n.BytesSent)
	}
}

func TestTCPOptionsSlowerThanRDMA(t *testing.T) {
	if TCPOptions().BaseLatency <= RDMAOptions().BaseLatency {
		t.Fatal("TCP baseline should be slower than RDMA")
	}
}

func TestAttachNodeSharesProc(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, RDMAOptions())
	host := sim.NewProc(e, "host")
	a := n.AttachNode(0, host)
	b := n.AddNode(1, "b")
	got := 0
	b.SetHandler(func(ids.ID, []byte) { got++ })
	if a.Proc() != host {
		t.Fatal("AttachNode did not reuse the process")
	}
	// A busy shared process delays the attached node's sends.
	host.Charge(10 * sim.Microsecond)
	var at sim.Time
	b.SetHandler(func(ids.ID, []byte) { at = e.Now() })
	a.Send(1, []byte("x"))
	e.Run()
	if at < sim.Time(10*sim.Microsecond) {
		t.Fatalf("send did not queue behind shared process: %v", at)
	}
}

func TestAttachDuplicatePanics(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, RDMAOptions())
	n.AddNode(0, "a")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AttachNode did not panic")
		}
	}()
	n.AttachNode(0, sim.NewProc(e, "dup"))
}

func TestSetGST(t *testing.T) {
	e := sim.NewEngine(7)
	n := New(e, RDMAOptions())
	a := n.AddNode(0, "a")
	b := n.AddNode(1, "b")
	got := 0
	b.SetHandler(func(ids.ID, []byte) { got++ })
	n.SetGST(sim.Time(sim.Millisecond), 0, 1.0) // drop everything pre-GST
	a.Send(1, []byte("x"))
	e.Run()
	if got != 0 {
		t.Fatal("pre-GST message with drop probability 1 delivered")
	}
	e.RunUntil(sim.Time(sim.Millisecond))
	a.Send(1, []byte("y"))
	e.Run()
	if got != 1 {
		t.Fatal("post-GST message dropped")
	}
	if n.Options().GST != sim.Time(sim.Millisecond) {
		t.Fatal("Options() does not reflect SetGST")
	}
}
