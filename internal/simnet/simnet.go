// Package simnet models the data-center network fabric of the paper's
// testbed: point-to-point authenticated, tamper-proof links (paper §2.4)
// over a single switch. Two link classes are provided: RDMA-class
// (kernel-bypass one-sided verbs, used by uBFT, Mu and the memory nodes)
// and VMA-class (kernel-bypass TCP, used by the MinBFT baseline, §7.2).
//
// The model implements eventual synchrony: before a configurable Global
// Stabilization Time (GST), messages suffer unbounded extra delays and may
// be dropped; after GST, delays are bounded by base latency + per-byte cost
// + bounded jitter. Links never corrupt or forge messages — authentication
// and tamper-proofness are assumptions of the paper — but Byzantine
// *processes* can of course send whatever payloads they like.
package simnet

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/latmodel"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Handler consumes a message delivered to a node. from is the authenticated
// sender identity (links are authenticated, so it cannot be spoofed). It is
// the transport-contract handler type: *Node satisfies transport.Endpoint.
type Handler = transport.Handler

// Options configures a network's timing behaviour.
type Options struct {
	// BaseLatency is the one-way latency of a minimal message after GST.
	BaseLatency sim.Duration
	// Jitter is the half-width of uniform per-message jitter after GST.
	Jitter sim.Duration
	// HeaderBytes is the fixed framing overhead added to every message's
	// serialization cost.
	HeaderBytes int
	// GST is the global stabilization time. Before it, messages get up to
	// AsyncExtraMax additional delay and are dropped with AsyncDropProb.
	// A zero GST means the network is synchronous from the start.
	GST sim.Time
	// AsyncExtraMax bounds the extra pre-GST delay (the adversary's delay
	// budget in tests; "unbounded" in the model, finite in any finite run).
	AsyncExtraMax sim.Duration
	// AsyncDropProb is the pre-GST drop probability in [0,1).
	AsyncDropProb float64
}

// RDMAOptions returns the calibrated RDMA-fabric options (ConnectX-6 class).
func RDMAOptions() Options {
	return Options{
		BaseLatency: latmodel.WireBase,
		Jitter:      latmodel.WireJitter,
		HeaderBytes: 64,
	}
}

// TCPOptions returns the calibrated VMA kernel-bypass TCP options used by
// the MinBFT baseline.
func TCPOptions() Options {
	return Options{
		BaseLatency: latmodel.TCPKernelBypassBase,
		Jitter:      2 * latmodel.WireJitter,
		HeaderBytes: 96,
	}
}

// Network is a set of nodes connected pairwise. It is bound to one engine.
type Network struct {
	eng   *sim.Engine
	opts  Options
	nodes map[ids.ID]*Node

	parts map[[2]ids.ID]bool

	// lastArrival enforces per-directed-link FIFO ordering: RDMA reliable
	// connections and kernel-bypass TCP both deliver in order, and the
	// message-ring receiver (§6.2) depends on write ordering.
	lastArrival map[[2]ids.ID]sim.Time

	// Stats.
	MsgsSent  uint64
	BytesSent uint64
	Dropped   uint64
}

// New creates a network on eng with the given options.
func New(eng *sim.Engine, opts Options) *Network {
	return &Network{
		eng:         eng,
		opts:        opts,
		nodes:       make(map[ids.ID]*Node),
		parts:       make(map[[2]ids.ID]bool),
		lastArrival: make(map[[2]ids.ID]sim.Time),
	}
}

// Engine returns the engine the network runs on.
func (n *Network) Engine() *sim.Engine { return n.eng }

// Options returns the network's timing options.
func (n *Network) Options() Options { return n.opts }

// SetGST updates the global stabilization time (tests move it to inject
// asynchronous periods mid-run).
func (n *Network) SetGST(t sim.Time, extraMax sim.Duration, dropProb float64) {
	n.opts.GST = t
	n.opts.AsyncExtraMax = extraMax
	n.opts.AsyncDropProb = dropProb
}

// AddNode registers a node with the given identity. The returned node has
// no handler yet; messages delivered before SetHandler are dropped.
func (n *Network) AddNode(id ids.ID, name string) *Node {
	if _, dup := n.nodes[id]; dup {
		panic(fmt.Sprintf("simnet: duplicate node %v", id))
	}
	nd := &Node{id: id, net: n, proc: sim.NewProc(n.eng, name)}
	nd.deliver = nd.deliverMsg
	n.nodes[id] = nd
	return nd
}

// AttachNode registers a node that reuses an existing process (so its busy
// time is shared with other components of the same simulated host).
func (n *Network) AttachNode(id ids.ID, proc *sim.Proc) *Node {
	if _, dup := n.nodes[id]; dup {
		panic(fmt.Sprintf("simnet: duplicate node %v", id))
	}
	nd := &Node{id: id, net: n, proc: proc}
	nd.deliver = nd.deliverMsg
	n.nodes[id] = nd
	return nd
}

// Node looks up a registered node (nil if absent).
func (n *Network) Node(id ids.ID) *Node { return n.nodes[id] }

// RemoveNode unregisters a node so its identity can be re-registered by a
// restarted process (crash-restart chaos). In-flight messages to the old
// node were bound to its process at send time and die with it; messages
// sent after the identity is re-registered reach the new process. Callers
// must remove and re-add within one simulated event so no send observes
// the unregistered identity.
func (n *Network) RemoveNode(id ids.ID) { delete(n.nodes, id) }

// Fabric adapts the network to the transport.Fabric contract so the
// deployment layers (cluster, shard) can assemble clusters without naming
// the simulated backend. AsFabric is the constructor.
type Fabric struct{ net *Network }

// AsFabric wraps the network as a transport.Fabric.
func AsFabric(n *Network) Fabric { return Fabric{net: n} }

// Engine returns the engine the fabric's endpoints run on.
func (f Fabric) Engine() *sim.Engine {
	if f.net == nil {
		return nil
	}
	return f.net.eng
}

// Network returns the wrapped simulated network (deployment layers keep it
// accessible for partition/GST fault injection in tests).
func (f Fabric) Network() *Network { return f.net }

// NewEndpoint registers a node, satisfying transport.Fabric. Unlike
// AddNode it reports a duplicate id as an error rather than a panic.
func (f Fabric) NewEndpoint(id ids.ID, name string) (transport.Endpoint, error) {
	if f.net == nil {
		return nil, fmt.Errorf("simnet: fabric has no network")
	}
	if _, dup := f.net.nodes[id]; dup {
		return nil, fmt.Errorf("simnet: duplicate node %v", id)
	}
	return f.net.AddNode(id, name), nil
}

func pairKey(a, b ids.ID) [2]ids.ID {
	if a > b {
		a, b = b, a
	}
	return [2]ids.ID{a, b}
}

// Partition cuts the bidirectional link between a and b: messages are
// silently dropped until Heal.
func (n *Network) Partition(a, b ids.ID) { n.parts[pairKey(a, b)] = true }

// Heal restores the link between a and b.
func (n *Network) Heal(a, b ids.ID) { delete(n.parts, pairKey(a, b)) }

// HealAll removes every partition.
func (n *Network) HealAll() { n.parts = make(map[[2]ids.ID]bool) }

// Partitioned reports whether the a<->b link is cut.
func (n *Network) Partitioned(a, b ids.ID) bool { return n.parts[pairKey(a, b)] }

// delay computes the one-way delay for a message of size bytes sent now,
// and whether the message is dropped.
func (n *Network) delay(size int) (sim.Duration, bool) {
	o := n.opts
	d := o.BaseLatency + latmodel.PerByte(size+o.HeaderBytes)
	rng := n.eng.Rand()
	if o.Jitter > 0 {
		d += sim.Duration(rng.Int63n(int64(o.Jitter)))
	}
	if n.eng.Now() < o.GST {
		if o.AsyncDropProb > 0 && rng.Float64() < o.AsyncDropProb {
			return 0, true
		}
		if o.AsyncExtraMax > 0 {
			d += sim.Duration(rng.Int63n(int64(o.AsyncExtraMax)))
		}
	}
	return d, false
}

// Node is one endpoint of the network.
type Node struct {
	id      ids.ID
	net     *Network
	proc    *sim.Proc
	handler Handler
	// deliver is the long-lived sim.MsgHandler for this node, built once so
	// message delivery allocates no closure (see Send).
	deliver sim.MsgHandler
}

// deliverMsg runs on the destination process when a message is handed to
// the application: it pays the dispatch cost and invokes the handler.
func (nd *Node) deliverMsg(from int, payload []byte) {
	if nd.handler == nil {
		return
	}
	nd.proc.Charge(latmodel.DispatchCost)
	nd.handler(ids.ID(from), payload)
}

// ID returns the node's identity.
func (nd *Node) ID() ids.ID { return nd.id }

// Proc returns the node's simulated process.
func (nd *Node) Proc() *sim.Proc { return nd.proc }

// SetHandler installs the message handler.
func (nd *Node) SetHandler(h Handler) { nd.handler = h }

// Send transmits payload to the node identified by to. The sender pays the
// NIC-posting dispatch cost; the wire delay, drops and partitions are
// applied by the network; the receiver pays a dispatch cost and then runs
// its handler, queuing behind any in-progress computation.
//
// The payload slice is delivered as-is: senders must not mutate a buffer
// after sending it (the wire codec always allocates fresh buffers).
func (nd *Node) Send(to ids.ID, payload []byte) {
	if nd.proc.Crashed() {
		return
	}
	dst := nd.net.nodes[to]
	if dst == nil {
		// A crashed-and-removed host: packets to it vanish, exactly like a
		// partition (clients and peers keep broadcasting to a dead replica
		// until it rejoins). Counted as drops.
		nd.proc.Charge(latmodel.DispatchCost)
		nd.net.MsgsSent++
		nd.net.Dropped++
		return
	}
	nd.proc.Charge(latmodel.DispatchCost)
	nd.net.MsgsSent++
	nd.net.BytesSent += uint64(len(payload) + nd.net.opts.HeaderBytes)
	if nd.net.Partitioned(nd.id, to) {
		nd.net.Dropped++
		return
	}
	d, dropped := nd.net.delay(len(payload))
	if dropped {
		nd.net.Dropped++
		return
	}
	from := nd.id
	// The message departs when the sender's CPU finishes its queued work:
	// a handler that computed (signed, hashed, copied) before sending pays
	// that time before the NIC sees the message.
	depart := nd.proc.BusyUntil()
	if now := nd.net.eng.Now(); depart < now {
		depart = now
	}
	// FIFO per directed link: a message never overtakes an earlier one.
	arrive := depart.Add(d)
	link := [2]ids.ID{from, to}
	if last := nd.net.lastArrival[link]; arrive < last {
		arrive = last
	}
	nd.net.lastArrival[link] = arrive
	// Closure-free delivery: the engine carries (handler, from, payload) in
	// the event record and queues once behind the receiver's busy horizon
	// at arrival, replicating the arrive-then-deliver two-step.
	nd.net.eng.PostMsg(arrive, dst.proc, dst.deliver, int(from), payload)
}

// Broadcast sends payload to every id in tos (convenience; each send is an
// independent message).
func (nd *Node) Broadcast(tos []ids.ID, payload []byte) {
	for _, to := range tos {
		if to == nd.id {
			continue
		}
		nd.Send(to, payload)
	}
}
