package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.After(30, func() { got = append(got, 3) })
	e.After(10, func() { got = append(got, 1) })
	e.After(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.After(10, func() {
		fired = append(fired, e.Now())
		e.After(5, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("nested scheduling wrong: %v", fired)
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine(1)
	ran := false
	tm := e.After(10, func() { ran = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Cancel() {
		t.Fatal("cancel should succeed")
	}
	if tm.Cancel() {
		t.Fatal("double cancel should fail")
	}
	e.Run()
	if ran {
		t.Fatal("cancelled timer fired")
	}
	if tm.Pending() {
		t.Fatal("cancelled timer still pending")
	}
}

func TestTimerCancelAfterFire(t *testing.T) {
	e := NewEngine(1)
	tm := e.After(1, func() {})
	e.Run()
	if tm.Cancel() {
		t.Fatal("cancel after fire should report false")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.After(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestNegativeAfterClamps(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.After(-5, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 0 {
		t.Fatalf("negative After mishandled: ran=%v now=%d", ran, e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, d := range []Duration{10, 20, 30, 40} {
		d := d
		e.After(d, func() { fired = append(fired, e.Now()) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(25) fired %d events, want 2", len(fired))
	}
	if e.Now() != 25 {
		t.Fatalf("clock = %d, want 25", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("remaining events lost: %v", fired)
	}
}

func TestRunForAdvancesIdleClock(t *testing.T) {
	e := NewEngine(1)
	e.RunFor(100)
	if e.Now() != 100 {
		t.Fatalf("idle RunFor did not advance clock: %d", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.After(1, func() { count++; e.Stop() })
	e.After(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("Stop did not halt run: count=%d", count)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		e := NewEngine(seed)
		var trace []int64
		for i := 0; i < 50; i++ {
			d := Duration(e.Rand().Int63n(1000))
			e.After(d, func() { trace = append(trace, int64(e.Now())) })
		}
		e.Run()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("non-deterministic lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic trace at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestProcExecSerializes(t *testing.T) {
	e := NewEngine(1)
	p := NewProc(e, "p")
	var ends []Time
	p.Exec(100, func() { ends = append(ends, e.Now()) })
	p.Exec(50, func() { ends = append(ends, e.Now()) })
	e.Run()
	if len(ends) != 2 || ends[0] != 100 || ends[1] != 150 {
		t.Fatalf("exec did not serialize: %v", ends)
	}
}

func TestProcDeliverWaitsForBusy(t *testing.T) {
	e := NewEngine(1)
	p := NewProc(e, "p")
	p.Charge(200)
	var at Time = -1
	p.Deliver(func() { at = e.Now() })
	e.Run()
	if at != 200 {
		t.Fatalf("delivery did not queue behind busy process: at=%d", at)
	}
}

func TestProcCrashDropsWork(t *testing.T) {
	e := NewEngine(1)
	p := NewProc(e, "p")
	ran := false
	p.Exec(10, func() { ran = true })
	p.Deliver(func() { ran = true })
	p.After(10, func() { ran = true })
	p.Crash()
	e.Run()
	if ran {
		t.Fatal("crashed process executed work")
	}
	if !p.Crashed() {
		t.Fatal("Crashed() false after Crash()")
	}
}

func TestProcChargeAccumulates(t *testing.T) {
	e := NewEngine(1)
	p := NewProc(e, "p")
	p.Charge(10)
	p.Charge(20)
	if p.BusyUntil() != 30 {
		t.Fatalf("busyUntil = %d, want 30", p.BusyUntil())
	}
}

func TestDurationString(t *testing.T) {
	if s := (1500 * Nanosecond).String(); s != "1.500us" {
		t.Fatalf("Duration.String = %q", s)
	}
	if (2 * Microsecond).Micros() != 2.0 {
		t.Fatal("Micros wrong")
	}
}

// Property: for any sequence of non-negative delays scheduled up front,
// events fire in non-decreasing time order and the final clock equals the
// maximum delay.
func TestQuickEventOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine(7)
		var fired []Time
		var max Duration
		for _, r := range raw {
			d := Duration(r)
			if d > max {
				max = d
			}
			e.After(d, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(raw) == 0 || e.Now() == Time(max)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
