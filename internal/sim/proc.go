package sim

import "fmt"

// Proc models one simulated process (a replica, a client, a memory node).
// It tracks a busy-until horizon so that CPU work (cryptography, hashing,
// buffer copies) serializes: an event delivered while the process is busy
// waits until the process frees up, exactly like a single-threaded event
// loop. This is what produces the "Other" (queuing/glue) latency category in
// the paper's Figure 9 breakdown.
type Proc struct {
	eng       *Engine
	name      string
	busyUntil Time
	crashed   bool

	// byzantine marks the process as adversarial. The protocol code never
	// reads this; fault-injection test harnesses use it to decide which
	// behaviours to corrupt.
	byzantine bool
}

// NewProc creates a process bound to the engine.
func NewProc(eng *Engine, name string) *Proc {
	return &Proc{eng: eng, name: name}
}

// Engine returns the engine the process is bound to.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.Now() }

// Crash stops the process: every subsequent delivery or execution on it is
// dropped. Crashes are permanent (crash-stop model).
func (p *Proc) Crash() { p.crashed = true }

// Crashed reports whether the process has crashed.
func (p *Proc) Crashed() bool { return p.crashed }

// SetByzantine marks the process as adversarial for fault-injection tests.
func (p *Proc) SetByzantine(b bool) { p.byzantine = b }

// Byzantine reports whether the process was marked adversarial.
func (p *Proc) Byzantine() bool { return p.byzantine }

// free returns the earliest time the process can start new work.
func (p *Proc) free() Time {
	if p.busyUntil > p.eng.Now() {
		return p.busyUntil
	}
	return p.eng.Now()
}

// Deliver schedules fn to run on this process as soon as it is free.
// Use it for message/handler delivery: if the process is mid-computation
// the handler queues behind it. The crash check happens at fire time in the
// engine; no wrapper closure is allocated.
func (p *Proc) Deliver(fn func()) Timer {
	ev := p.eng.schedule(p.free(), p, fn)
	return Timer{ev: ev, gen: ev.gen}
}

// Post is Deliver without a cancellation handle: the hot-path variant for
// callers that never cancel the delivery (saves the Timer allocation).
func (p *Proc) Post(fn func()) {
	p.eng.schedule(p.free(), p, fn)
}

// PostMsg is Post for a long-lived MsgHandler: the (from, payload)
// arguments ride in the event record, so the delivery allocates no closure.
func (p *Proc) PostMsg(h MsgHandler, from int, payload []byte) {
	ev := p.eng.schedule(p.free(), p, nil)
	ev.mfn, ev.mfrom, ev.mpayload = h, from, payload
}

// Exec schedules fn after the process performs cost worth of CPU work.
// The work starts when the process is next free and extends its busy
// horizon, so concurrent Execs serialize.
func (p *Proc) Exec(cost Duration, fn func()) Timer {
	if cost < 0 {
		panic(fmt.Sprintf("sim: negative exec cost %d on %s", cost, p.name))
	}
	if p.eng.realtime {
		cost = 0 // the CPU work is real; don't add its model on top
	}
	start := p.free()
	end := start.Add(cost)
	p.busyUntil = end
	ev := p.eng.schedule(end, p, fn)
	return Timer{ev: ev, gen: ev.gen}
}

// Charge accounts cost of CPU work synchronously: it extends the busy
// horizon without scheduling a continuation. Use it inside a handler for
// work whose result is needed inline (e.g. a checksum computed before
// sending).
func (p *Proc) Charge(cost Duration) {
	if cost < 0 {
		panic(fmt.Sprintf("sim: negative charge %d on %s", cost, p.name))
	}
	if p.eng.realtime {
		return // the CPU work is real; don't add its model on top
	}
	p.busyUntil = p.free().Add(cost)
}

// After schedules fn to run d from now regardless of busy state (a timer,
// not CPU work). Crashed processes never fire their timers.
func (p *Proc) After(d Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	ev := p.eng.schedule(p.eng.now.Add(p.eng.scaleDelay(d)), p, fn)
	return Timer{ev: ev, gen: ev.gen}
}

// PostAfter is After without a cancellation handle (saves the Timer
// allocation for fire-and-forget timers like NIC completion callbacks).
func (p *Proc) PostAfter(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	p.eng.schedule(p.eng.now.Add(p.eng.scaleDelay(d)), p, fn)
}

// BusyUntil exposes the busy horizon (used by tests and the latency
// breakdown tracer).
func (p *Proc) BusyUntil() Time { return p.busyUntil }
