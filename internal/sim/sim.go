// Package sim provides a deterministic discrete-event simulation engine
// with a virtual nanosecond clock. It is the substrate on which the whole
// uBFT reproduction runs: processes, networks, memory nodes and crypto cost
// models all schedule work on a single Engine, which executes events in
// (time, sequence) order. Runs with the same seed are bit-for-bit
// reproducible, which is what lets the benchmark harness regenerate the
// paper's figures deterministically.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It mirrors
// time.Duration's unit so the usual constants read naturally
// (3 * sim.Microsecond, etc.).
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// String renders a Duration in microseconds, the natural unit of this paper.
func (d Duration) String() string {
	return fmt.Sprintf("%.3fus", float64(d)/float64(Microsecond))
}

// Micros returns the duration in (fractional) microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Add advances a Time by a Duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the Duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Timer is a handle to a scheduled event; it can be cancelled before firing.
type Timer struct {
	ev *event
}

// Cancel prevents the timer's function from running. Cancelling an already
// fired or already cancelled timer is a no-op. It reports whether the event
// was still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Pending reports whether the timer has neither fired nor been cancelled.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && !t.ev.cancelled && !t.ev.fired
}

type event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
	index     int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all simulated processes run as callbacks inside Run.
type Engine struct {
	now      Time
	seq      uint64
	events   eventHeap
	rng      *rand.Rand
	executed uint64
	stopped  bool
}

// NewEngine returns an engine whose randomness is derived from seed.
// Two engines with the same seed and the same scheduled workload produce
// identical executions.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. All simulated
// nondeterminism (jitter, drops, workload choices) must come from here.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Executed returns the number of events executed so far (a cheap progress
// and runaway-loop diagnostic).
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events still queued (including cancelled
// ones that have not yet been popped).
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a bug in a cost model.
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d nanoseconds from now. Negative durations are
// clamped to zero (run "immediately", after already queued same-time events).
func (e *Engine) After(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Stop makes Run/RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single next event. It reports whether an event ran
// (false when the queue is empty). Cancelled events are skipped silently.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fired = true
		e.executed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to deadline (if it advanced that far). Events scheduled beyond deadline
// remain queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.events) == 0 {
			break
		}
		// Peek.
		next := e.events[0]
		if next.cancelled {
			heap.Pop(&e.events)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor runs the simulation for d nanoseconds of virtual time.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }
