// Package sim provides a deterministic discrete-event simulation engine
// with a virtual nanosecond clock. It is the substrate on which the whole
// uBFT reproduction runs: processes, networks, memory nodes and crypto cost
// models all schedule work on a single Engine, which executes events in
// (time, sequence) order. Runs with the same seed are bit-for-bit
// reproducible, which is what lets the benchmark harness regenerate the
// paper's figures deterministically.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It mirrors
// time.Duration's unit so the usual constants read naturally
// (3 * sim.Microsecond, etc.).
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// String renders a Duration in microseconds, the natural unit of this paper.
func (d Duration) String() string {
	return fmt.Sprintf("%.3fus", float64(d)/float64(Microsecond))
}

// Micros returns the duration in (fractional) microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Add advances a Time by a Duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the Duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Timer is a handle to a scheduled event; it can be cancelled before firing.
// It is a small value (no allocation per scheduling); the zero Timer is an
// inert handle whose Cancel and Pending are no-ops. Events are pooled: the
// generation number lets a stale handle (whose event has fired and been
// recycled for an unrelated scheduling) detect that it no longer owns the
// event instead of cancelling someone else's.
type Timer struct {
	ev  *event
	gen uint64
}

// Cancel prevents the timer's function from running. Cancelling an already
// fired or already cancelled timer (or the zero Timer) is a no-op. It
// reports whether the event was still pending.
func (t Timer) Cancel() bool {
	if t.ev == nil || t.ev.gen != t.gen || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Pending reports whether the timer has neither fired nor been cancelled.
func (t Timer) Pending() bool {
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.cancelled && !t.ev.fired
}

// MsgHandler is a long-lived message-delivery function. Message events
// carry (handler, from, payload) in the event record itself, so delivering
// a message allocates no closure.
type MsgHandler func(from int, payload []byte)

type event struct {
	at  Time
	seq uint64
	gen uint64
	fn  func()
	// Message-event fast path: when mfn is non-nil it is invoked with
	// (mfrom, mpayload) instead of fn.
	mfn      MsgHandler
	mfrom    int
	mpayload []byte
	// proc, when non-nil, is the process the event is delivered to: a
	// crashed process drops the event at fire time. Keeping the check in
	// the engine (rather than a wrapper closure) saves one allocation per
	// scheduling on the hot path.
	proc *Proc
	// deferBusy marks an arrival event that must queue (once) behind the
	// computation its process has in progress at arrival time, mirroring
	// the arrival-then-deliver two-step without a second closure+event.
	deferBusy bool
	requeued  bool
	cancelled bool
	fired     bool
	index     int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all simulated processes run as callbacks inside Run.
type Engine struct {
	now      Time
	seq      uint64
	events   eventHeap
	free     []*event // recycled event records (steady state allocates none)
	rng      *rand.Rand
	executed uint64
	stopped  bool

	// realtime marks an engine driven against the wall clock (a nettrans
	// host loop) rather than by discrete-event virtual time. In realtime
	// mode CPU cost models are disabled — the CPU work is real, charging
	// its modeled virtual cost on top would double-count it — and the
	// clock may be advanced externally between events (AdvanceTo).
	realtime bool
	// timeScale stretches every delay-based timer (After/PostAfter) by a
	// constant factor. The protocol's timeouts are tuned for the
	// microsecond-scale RDMA fabric the simulation models; a wall-clock
	// deployment over kernel TCP has ~100x the round-trip time, and
	// running e.g. the 200us tail-broadcast retransmit timer at RDMA
	// tuning there turns every in-flight message into a retransmit storm.
	// 0 or 1 means unscaled (the deterministic simulation never scales).
	timeScale int64
}

// NewEngine returns an engine whose randomness is derived from seed.
// Two engines with the same seed and the same scheduled workload produce
// identical executions.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetRealtime switches the engine into wall-clock mode: cost models become
// no-ops and the clock may be advanced externally. The deterministic
// simulation path never calls this.
func (e *Engine) SetRealtime(on bool) { e.realtime = on }

// Realtime reports whether the engine runs in wall-clock mode.
func (e *Engine) Realtime() bool { return e.realtime }

// SetTimeScale stretches every subsequent delay-based timer by factor k
// (see the timeScale field). Realtime hosts set this once at startup.
func (e *Engine) SetTimeScale(k int64) { e.timeScale = k }

// TimeScale returns the configured timer stretch factor (0 = unscaled).
func (e *Engine) TimeScale() int64 { return e.timeScale }

// scaleDelay applies the realtime timer stretch to a relative delay.
func (e *Engine) scaleDelay(d Duration) Duration {
	if e.timeScale > 1 {
		return d * Duration(e.timeScale)
	}
	return d
}

// AdvanceTo moves the clock forward to t without executing anything, so
// timers scheduled relative to Now() by the next handler are anchored at
// the wall clock rather than at the last executed event. Moving backward
// is a no-op. Only the realtime host loop uses this.
func (e *Engine) AdvanceTo(t Time) {
	if t > e.now {
		e.now = t
	}
}

// NextEventTime reports the timestamp of the earliest runnable event,
// discarding cancelled ones along the way. ok is false when the queue is
// empty. The realtime host loop uses it to bound its sleep.
func (e *Engine) NextEventTime() (t Time, ok bool) {
	for len(e.events) > 0 {
		next := e.events[0]
		if next.cancelled {
			e.recycle(heap.Pop(&e.events).(*event))
			continue
		}
		return next.at, true
	}
	return 0, false
}

// Rand returns the engine's deterministic random source. All simulated
// nondeterminism (jitter, drops, workload choices) must come from here.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Executed returns the number of events executed so far (a cheap progress
// and runaway-loop diagnostic).
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events still queued (including cancelled
// ones that have not yet been popped).
func (e *Engine) Pending() int { return len(e.events) }

// schedule enqueues an event, reusing a recycled record when available.
func (e *Engine) schedule(t Time, proc *Proc, fn func()) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free = e.free[:n-1]
		ev.cancelled, ev.fired = false, false
	} else {
		ev = &event{}
	}
	ev.at, ev.seq, ev.proc, ev.fn = t, e.seq, proc, fn
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// recycle returns a popped event to the free list. The generation bump
// invalidates any Timer handle still pointing at it.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.mfn = nil
	ev.mpayload = nil
	ev.proc = nil
	ev.deferBusy, ev.requeued = false, false
	e.free = append(e.free, ev)
}

// PostMsg schedules h(from, payload) on proc at arrival time t, queueing
// (once) behind whatever computation proc has in progress at t — the
// message-delivery discipline of Proc.Deliver sampled at arrival — without
// allocating a closure, a Timer, or a second event.
func (e *Engine) PostMsg(t Time, proc *Proc, h MsgHandler, from int, payload []byte) {
	ev := e.schedule(t, proc, nil)
	ev.mfn, ev.mfrom, ev.mpayload = h, from, payload
	ev.deferBusy = true
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a bug in a cost model.
func (e *Engine) At(t Time, fn func()) Timer {
	ev := e.schedule(t, nil, fn)
	return Timer{ev: ev, gen: ev.gen}
}

// Post schedules fn at absolute time t without returning a cancellation
// handle: the hot-path variant of At (no Timer allocation).
func (e *Engine) Post(t Time, fn func()) { e.schedule(t, nil, fn) }

// After schedules fn to run d nanoseconds from now. Negative durations are
// clamped to zero (run "immediately", after already queued same-time events).
func (e *Engine) After(d Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(e.scaleDelay(d)), fn)
}

// Stop makes Run/RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single next event. It reports whether an event ran
// (false when the queue is empty). Cancelled events are skipped silently;
// events bound to a crashed process fire as no-ops (the clock still
// advances, exactly as when the crash check lived in a wrapper closure).
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.cancelled {
			e.recycle(ev)
			continue
		}
		// An arrival event requeues exactly once at the process's free
		// time as sampled now, at arrival — reproducing the two-step
		// arrive-then-Deliver scheme's timing AND its sequence numbering
		// (the delivery always re-enters the queue behind events already
		// scheduled for the same instant), just without the second
		// closure and event allocation.
		if ev.deferBusy && !ev.requeued {
			ev.requeued = true
			if ev.proc != nil && ev.proc.busyUntil > ev.at {
				ev.at = ev.proc.busyUntil
			}
			ev.seq = e.seq
			e.seq++
			heap.Push(&e.events, ev)
			continue
		}
		// In pure virtual time events pop in nondecreasing order so this
		// assignment only ever moves the clock forward; the guard matters
		// in realtime mode, where AdvanceTo may have pushed the clock past
		// an event that was waiting for its wall-clock due time.
		if ev.at > e.now {
			e.now = ev.at
		}
		ev.fired = true
		e.executed++
		crashed := ev.proc != nil && ev.proc.crashed
		if ev.mfn != nil {
			mfn, mfrom, mpayload := ev.mfn, ev.mfrom, ev.mpayload
			e.recycle(ev)
			if !crashed {
				mfn(mfrom, mpayload)
			}
		} else {
			fn := ev.fn
			e.recycle(ev)
			if !crashed {
				fn()
			}
		}
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to deadline (if it advanced that far). Events scheduled beyond deadline
// remain queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.events) == 0 {
			break
		}
		// Peek.
		next := e.events[0]
		if next.cancelled {
			e.recycle(heap.Pop(&e.events).(*event))
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor runs the simulation for d nanoseconds of virtual time.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }
