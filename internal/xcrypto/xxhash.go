package xcrypto

import "math/bits"

// xxHash64 implemented from the public specification. The paper's prototype
// uses xxHash for register and message-ring checksums; the Go standard
// library has no xxHash, so this is a from-scratch implementation (stdlib
// only, no dependencies). It is a non-cryptographic checksum: it detects
// torn RDMA reads and wire corruption, not adversarial collisions — exactly
// the role it plays in the paper (§6.1, §6.2).

const (
	prime64x1 uint64 = 0x9E3779B185EBCA87
	prime64x2 uint64 = 0xC2B2AE3D27D4EB4F
	prime64x3 uint64 = 0x165667B19E3779F9
	prime64x4 uint64 = 0x85EBCA77C2B2AE63
	prime64x5 uint64 = 0x27D4EB2F165667C5
)

// XXHash64 computes the 64-bit xxHash of data with the given seed.
func XXHash64(data []byte, seed uint64) uint64 {
	n := len(data)
	var h uint64

	if n >= 32 {
		v1 := seed + prime64x1 + prime64x2
		v2 := seed + prime64x2
		v3 := seed
		v4 := seed - prime64x1
		for len(data) >= 32 {
			v1 = round64(v1, le64(data[0:8]))
			v2 = round64(v2, le64(data[8:16]))
			v3 = round64(v3, le64(data[16:24]))
			v4 = round64(v4, le64(data[24:32]))
			data = data[32:]
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = mergeRound64(h, v1)
		h = mergeRound64(h, v2)
		h = mergeRound64(h, v3)
		h = mergeRound64(h, v4)
	} else {
		h = seed + prime64x5
	}

	h += uint64(n)

	for len(data) >= 8 {
		h ^= round64(0, le64(data[0:8]))
		h = bits.RotateLeft64(h, 27)*prime64x1 + prime64x4
		data = data[8:]
	}
	if len(data) >= 4 {
		h ^= uint64(le32(data[0:4])) * prime64x1
		h = bits.RotateLeft64(h, 23)*prime64x2 + prime64x3
		data = data[4:]
	}
	for _, b := range data {
		h ^= uint64(b) * prime64x5
		h = bits.RotateLeft64(h, 11) * prime64x1
	}

	h ^= h >> 33
	h *= prime64x2
	h ^= h >> 29
	h *= prime64x3
	h ^= h >> 32
	return h
}

func round64(acc, input uint64) uint64 {
	acc += input * prime64x2
	acc = bits.RotateLeft64(acc, 31)
	return acc * prime64x1
}

func mergeRound64(acc, val uint64) uint64 {
	val = round64(0, val)
	acc ^= val
	return acc*prime64x1 + prime64x4
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func le32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
