package xcrypto

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/ids"
	"repro/internal/sim"
)

func testProc() (*sim.Engine, *sim.Proc) {
	e := sim.NewEngine(1)
	return e, sim.NewProc(e, "p")
}

func TestXXHash64KnownVectors(t *testing.T) {
	// Vectors from the reference implementation's test suite.
	cases := []struct {
		in   string
		seed uint64
		want uint64
	}{
		{"", 0, 0xef46db3751d8e999},
		{"a", 0, 0xd24ec4f1a98c6e5b},
		{"as", 0, 0x1c330fb2d66be179},
		{"asd", 0, 0x631c37ce72a97393},
		{"asdf", 0, 0x415872f599cea71e},
	}
	for _, c := range cases {
		if got := XXHash64([]byte(c.in), c.seed); got != c.want {
			t.Errorf("XXHash64(%q, %d) = %#x, want %#x", c.in, c.seed, got, c.want)
		}
	}
}

func TestXXHash64LongInputPaths(t *testing.T) {
	// Exercise the 32-byte-block path and each tail-length path; verify
	// determinism and sensitivity rather than external vectors.
	base := make([]byte, 133)
	for i := range base {
		base[i] = byte(i * 7)
	}
	for n := 0; n <= len(base); n++ {
		h1 := XXHash64(base[:n], 0)
		h2 := XXHash64(base[:n], 0)
		if h1 != h2 {
			t.Fatalf("non-deterministic at len %d", n)
		}
		if n > 0 {
			mutated := append([]byte(nil), base[:n]...)
			mutated[n/2] ^= 0x01
			if XXHash64(mutated, 0) == h1 {
				t.Fatalf("single-bit flip not detected at len %d", n)
			}
		}
		if XXHash64(base[:n], 1) == h1 {
			t.Fatalf("seed not mixed in at len %d", n)
		}
	}
}

func TestXXHash64QuickBitFlip(t *testing.T) {
	f := func(data []byte, pos uint16, bit uint8) bool {
		if len(data) == 0 {
			return true
		}
		i := int(pos) % len(data)
		h := XXHash64(data, 0)
		data[i] ^= 1 << (bit % 8)
		return XXHash64(data, 0) != h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryDeterministic(t *testing.T) {
	idList := []ProcID{0, 1, 2}
	r1 := NewRegistry(99, idList)
	r2 := NewRegistry(99, idList)
	for _, id := range idList {
		if !bytes.Equal(r1.PublicKey(id), r2.PublicKey(id)) {
			t.Fatalf("registry not deterministic for %v", id)
		}
	}
	r3 := NewRegistry(100, idList)
	if bytes.Equal(r1.PublicKey(0), r3.PublicKey(0)) {
		t.Fatal("different seeds produced same keys")
	}
}

func TestSignVerify(t *testing.T) {
	reg := NewRegistry(1, []ProcID{0, 1})
	_, p := testProc()
	s0 := reg.Signer(0)
	msg := []byte("prepare v=0 s=1")
	sig := s0.Sign(p, msg)
	if !s0.Verify(p, 0, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if s0.Verify(p, 1, msg, sig) {
		t.Fatal("signature attributed to wrong signer accepted")
	}
	if s0.Verify(p, 0, []byte("different"), sig) {
		t.Fatal("signature over different message accepted")
	}
	bad := append(Signature(nil), sig...)
	bad[0] ^= 0xFF
	if s0.Verify(p, 0, msg, bad) {
		t.Fatal("corrupted signature accepted")
	}
	if s0.Verify(p, 99, msg, sig) {
		t.Fatal("unknown signer accepted")
	}
	if s0.Verify(p, 0, msg, sig[:10]) {
		t.Fatal("short signature accepted")
	}
}

func TestSignChargesVirtualTime(t *testing.T) {
	reg := NewRegistry(1, []ProcID{0})
	_, p := testProc()
	s := reg.Signer(0)
	before := p.BusyUntil()
	s.Sign(p, []byte("m"))
	if p.BusyUntil() <= before {
		t.Fatal("Sign charged no virtual time")
	}
	mid := p.BusyUntil()
	s.Verify(p, 0, []byte("m"), s.Sign(p, []byte("m")))
	if p.BusyUntil() <= mid {
		t.Fatal("Verify charged no virtual time")
	}
}

func TestSignAsync(t *testing.T) {
	reg := NewRegistry(1, []ProcID{0})
	e, p := testProc()
	s := reg.Signer(0)
	var got Signature
	s.SignAsync(p, []byte("bg"), func(sig Signature) { got = sig })
	if got != nil {
		t.Fatal("SignAsync completed synchronously")
	}
	e.Run()
	if got == nil || !s.Verify(p, 0, []byte("bg"), got) {
		t.Fatal("async signature invalid")
	}
}

func TestMAC(t *testing.T) {
	_, p := testProc()
	key := []byte("shared-secret")
	msg := []byte("ui request 7")
	tag := MAC(p, key, msg)
	if !VerifyMAC(p, key, msg, tag) {
		t.Fatal("valid MAC rejected")
	}
	if VerifyMAC(p, key, []byte("other"), tag) {
		t.Fatal("MAC over other message accepted")
	}
	if VerifyMAC(p, []byte("wrong-key"), msg, tag) {
		t.Fatal("MAC with wrong key accepted")
	}
}

func TestDigest(t *testing.T) {
	_, p := testProc()
	d1 := Digest(p, []byte("m"))
	d2 := Digest(p, []byte("m"))
	d3 := Digest(p, []byte("n"))
	if !EqualDigests(d1, d2) {
		t.Fatal("digest not deterministic")
	}
	if EqualDigests(d1, d3) {
		t.Fatal("distinct messages share a digest")
	}
}

func TestSignerUnknownIDPanics(t *testing.T) {
	reg := NewRegistry(1, []ProcID{0})
	defer func() {
		if recover() == nil {
			t.Fatal("Signer for unknown id did not panic")
		}
	}()
	reg.Signer(ids.ID(42))
}
