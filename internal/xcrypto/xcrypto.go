// Package xcrypto is the cryptographic substrate of the uBFT reproduction.
// It wraps the standard library's ed25519 (standing in for ed25519-dalek)
// and HMAC-SHA256 (standing in for BLAKE3 keyed hashing), implements
// xxHash64 from scratch for checksums, and charges calibrated virtual-time
// costs on the simulated process performing each operation. Signatures are
// REAL: a forged or corrupted signature genuinely fails verification, so
// Byzantine tests exercise true cryptographic rejection, while the virtual
// clock advances by dalek-class costs from internal/latmodel.
package xcrypto

import (
	"bytes"
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"hash"
	"io"
	"math/rand"

	"repro/internal/ids"
	"repro/internal/latmodel"
	"repro/internal/sim"
)

// ProcID identifies a process in the key registry (replicas and clients).
// It aliases ids.ID so network-layer and crypto-layer identities are one
// namespace.
type ProcID = ids.ID

// Signature is an ed25519 signature (64 bytes).
type Signature []byte

// SigLen is the length of a signature in bytes.
const SigLen = ed25519.SignatureSize

// DigestLen is the length of a message fingerprint in bytes (paper §7.6:
// a 32 B cryptographic hash).
const DigestLen = sha256.Size

// Registry holds the pre-published public keys of all processes (paper
// §2.4: "processes can sign messages using their private key and verify
// unforgeable signatures using the pre-published public keys").
type Registry struct {
	pubs  map[ProcID]ed25519.PublicKey
	privs map[ProcID]ed25519.PrivateKey
}

// NewRegistry deterministically generates a keypair for each id in ids,
// seeding key generation from seed so simulations are reproducible.
func NewRegistry(seed int64, ids []ProcID) *Registry {
	r := &Registry{
		pubs:  make(map[ProcID]ed25519.PublicKey, len(ids)),
		privs: make(map[ProcID]ed25519.PrivateKey, len(ids)),
	}
	rng := rand.New(rand.NewSource(seed))
	for _, id := range ids {
		var keySeed [ed25519.SeedSize]byte
		if _, err := io.ReadFull(rng, keySeed[:]); err != nil {
			panic(err) // math/rand never errors
		}
		priv := ed25519.NewKeyFromSeed(keySeed[:])
		r.privs[id] = priv
		r.pubs[id] = priv.Public().(ed25519.PublicKey)
	}
	return r
}

// Signer returns the signing handle for id. It panics if id is unknown:
// asking for a missing key is always a harness bug.
func (r *Registry) Signer(id ProcID) *Signer {
	priv, ok := r.privs[id]
	if !ok {
		panic(fmt.Sprintf("xcrypto: no key registered for process %d", id))
	}
	return &Signer{id: id, priv: priv, reg: r}
}

// PublicKey returns the public key of id (nil if unknown).
func (r *Registry) PublicKey(id ProcID) ed25519.PublicKey { return r.pubs[id] }

// Signer signs on behalf of one process and verifies against the registry.
type Signer struct {
	id   ProcID
	priv ed25519.PrivateKey
	reg  *Registry
}

// ID returns the process the signer signs for.
func (s *Signer) ID() ProcID { return s.id }

// Sign produces a real ed25519 signature over msg and charges the
// calibrated signing cost (plus crypto-pool dispatch) to p.
func (s *Signer) Sign(p *sim.Proc, msg []byte) Signature {
	p.Charge(latmodel.SignCost + latmodel.CryptoDispatchCost)
	return Signature(ed25519.Sign(s.priv, msg))
}

// SignAsync signs msg off the critical path: the continuation runs once the
// process has paid the signing cost. Used for the background bookkeeping
// signatures of the fast path (checkpoints, summaries).
func (s *Signer) SignAsync(p *sim.Proc, msg []byte, done func(Signature)) {
	sig := Signature(ed25519.Sign(s.priv, msg))
	p.Exec(latmodel.SignCost+latmodel.CryptoDispatchCost, func() { done(sig) })
}

// SignBg signs on the pool process (a crypto thread pool running on other
// cores, as in the paper's prototype, which relegates bookkeeping
// signatures to a background task) and delivers the result to the main
// process without blocking it.
func (s *Signer) SignBg(pool, main *sim.Proc, msg []byte, done func(Signature)) {
	sig := Signature(ed25519.Sign(s.priv, msg))
	pool.Exec(latmodel.SignCost+latmodel.CryptoDispatchCost, func() {
		main.Deliver(func() { done(sig) })
	})
}

// VerifyBg verifies on the pool process and delivers the result to the
// main process without blocking it.
func (s *Signer) VerifyBg(pool, main *sim.Proc, from ProcID, msg []byte, sig Signature, done func(bool)) {
	pub, ok := s.reg.pubs[from]
	valid := ok && len(sig) == ed25519.SignatureSize && ed25519.Verify(pub, msg, sig)
	pool.Exec(latmodel.VerifyCost+latmodel.CryptoDispatchCost, func() {
		main.Deliver(func() { done(valid) })
	})
}

// Verify checks that sig is from's signature over msg, charging the
// verification cost to p. It returns false for unknown signers, malformed
// or forged signatures.
func (s *Signer) Verify(p *sim.Proc, from ProcID, msg []byte, sig Signature) bool {
	p.Charge(latmodel.VerifyCost + latmodel.CryptoDispatchCost)
	pub, ok := s.reg.pubs[from]
	if !ok || len(sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(pub, msg, sig)
}

// Digest returns a 32-byte cryptographic fingerprint of msg, charging the
// hashing cost to p. Fingerprints are what CTBcast stores in disaggregated
// memory instead of full messages (paper §7.6).
func Digest(p *sim.Proc, msg []byte) [DigestLen]byte {
	p.Charge(latmodel.DigestCost(len(msg)))
	return sha256.Sum256(msg)
}

// Checksum returns the xxHash64 checksum of data, charging cost to p.
// This is the torn-read/corruption detector of registers and message rings.
func Checksum(p *sim.Proc, data []byte) uint64 {
	p.Charge(latmodel.ChecksumCost(len(data)))
	return XXHash64(data, 0)
}

// ChecksumNoCharge computes the checksum without charging virtual time;
// used when the cost is accounted at a coarser granularity.
func ChecksumNoCharge(data []byte) uint64 { return XXHash64(data, 0) }

// DigestNoCharge fingerprints msg without charging virtual time; used when
// the caller accounts hashing cost at a coarser granularity.
func DigestNoCharge(msg []byte) [DigestLen]byte { return sha256.Sum256(msg) }

// MAC computes an HMAC-SHA256 tag over msg with key, charging BLAKE3-class
// keyed-hash cost to p. For repeated MACs under one key, use KeyedMAC,
// which reuses the keyed hash state instead of re-deriving it per call.
func MAC(p *sim.Proc, key, msg []byte) []byte {
	p.Charge(latmodel.HMACCost(len(msg)))
	m := hmac.New(sha256.New, key)
	m.Write(msg)
	return m.Sum(nil)
}

// KeyedMAC is a reusable HMAC-SHA256 state bound to one key. hmac.Reset
// restores the keyed initial state, so steady-state operation re-derives
// neither the key schedule nor the inner/outer pads; Verify additionally
// computes the expected tag into a scratch buffer instead of allocating.
// Not safe for concurrent use (one per simulated process, like the
// enclaves it models).
type KeyedMAC struct {
	mac     hash.Hash
	scratch [sha256.Size]byte
}

// NewKeyedMAC binds a reusable HMAC state to key.
func NewKeyedMAC(key []byte) *KeyedMAC {
	return &KeyedMAC{mac: hmac.New(sha256.New, key)}
}

// MAC computes the tag over msg, charging keyed-hash cost to p. The tag is
// freshly allocated (callers embed tags in retained messages).
func (k *KeyedMAC) MAC(p *sim.Proc, msg []byte) []byte {
	p.Charge(latmodel.HMACCost(len(msg)))
	k.mac.Reset()
	k.mac.Write(msg)
	return k.mac.Sum(nil)
}

// Verify checks tag over msg in constant time, without heap-allocating the
// expected tag.
func (k *KeyedMAC) Verify(p *sim.Proc, msg, tag []byte) bool {
	p.Charge(latmodel.HMACCost(len(msg)))
	k.mac.Reset()
	k.mac.Write(msg)
	sum := k.mac.Sum(k.scratch[:0])
	return hmac.Equal(sum, tag)
}

// VerifyMAC checks an HMAC tag in constant time, charging cost to p.
func VerifyMAC(p *sim.Proc, key, msg, tag []byte) bool {
	p.Charge(latmodel.HMACCost(len(msg)))
	m := hmac.New(sha256.New, key)
	m.Write(msg)
	return hmac.Equal(m.Sum(nil), tag)
}

// EqualDigests reports whether two fingerprints match.
func EqualDigests(a, b [DigestLen]byte) bool { return bytes.Equal(a[:], b[:]) }
