package router

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func pairRig() (*sim.Engine, *Router, *Router) {
	eng := sim.NewEngine(1)
	net := simnet.New(eng, simnet.RDMAOptions())
	a := New(net.AddNode(0, "a"))
	b := New(net.AddNode(1, "b"))
	return eng, a, b
}

func TestChannelDispatch(t *testing.T) {
	eng, a, b := pairRig()
	var gotRPC, gotDirect []byte
	b.Register(ChanRPC, func(from ids.ID, p []byte) { gotRPC = p })
	b.Register(ChanDirect, func(from ids.ID, p []byte) { gotDirect = p })
	a.Send(1, ChanRPC, []byte("rpc"))
	a.Send(1, ChanDirect, []byte("direct"))
	eng.Run()
	if string(gotRPC) != "rpc" || string(gotDirect) != "direct" {
		t.Fatalf("dispatch wrong: %q %q", gotRPC, gotDirect)
	}
}

func TestSenderIdentityPreserved(t *testing.T) {
	eng, a, b := pairRig()
	var from ids.ID = ids.None
	b.Register(ChanRPC, func(f ids.ID, p []byte) { from = f })
	a.Send(1, ChanRPC, []byte("x"))
	eng.Run()
	if from != 0 {
		t.Fatalf("from = %v", from)
	}
}

func TestUnregisteredChannelDropped(t *testing.T) {
	eng, a, b := pairRig()
	called := false
	b.Register(ChanRPC, func(ids.ID, []byte) { called = true })
	a.Send(1, ChanMemReq, []byte("x")) // nothing registered for this
	eng.Run()
	if called {
		t.Fatal("message leaked across channels")
	}
}

func TestEmptyFrameDropped(t *testing.T) {
	eng, a, b := pairRig()
	called := false
	b.Register(ChanRPC, func(ids.ID, []byte) { called = true })
	// Bypass Router.Send to deliver a raw zero-length frame.
	a.Node().Send(1, nil)
	eng.Run()
	if called {
		t.Fatal("empty frame dispatched")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	_, a, _ := pairRig()
	a.Register(ChanRPC, func(ids.ID, []byte) {})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	a.Register(ChanRPC, func(ids.ID, []byte) {})
}

func TestEmptyPayloadStillTagged(t *testing.T) {
	eng, a, b := pairRig()
	got := false
	var body []byte
	b.Register(ChanDirect, func(_ ids.ID, p []byte) { got, body = true, p })
	a.Send(1, ChanDirect, nil)
	eng.Run()
	if !got || len(body) != 0 {
		t.Fatalf("empty payload mishandled: got=%v body=%v", got, body)
	}
}

func TestIDAccessor(t *testing.T) {
	_, a, b := pairRig()
	if a.ID() != 0 || b.ID() != 1 {
		t.Fatal("router IDs wrong")
	}
}
