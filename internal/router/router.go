// Package router multiplexes the many protocol components of one simulated
// host (RPC, message rings, memory-node traffic, consensus control
// messages) over that host's single authenticated network endpoint. Every
// message carries a one-byte channel tag; components register a handler per
// channel. This mirrors how the paper's prototype multiplexes queue pairs
// and completion queues on one RDMA NIC.
package router

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Channel tags, aliased from the wire registry so the wire format stays
// self-describing in one place.
const (
	ChanMemReq   = wire.ChanMemReq   // host -> memory node: register READ/WRITE
	ChanMemResp  = wire.ChanMemResp  // memory node -> host: completions
	ChanRing     = wire.ChanRing     // message-ring RDMA writes (sender -> receiver)
	ChanRingAck  = wire.ChanRingAck  // tail-broadcast acknowledgements
	ChanRPC      = wire.ChanRPC      // client <-> replica requests/responses
	ChanDirect   = wire.ChanDirect   // consensus direct messages (view-change shares, summaries)
	ChanBaseline = wire.ChanBaseline // baseline protocols (Mu, MinBFT)
	ChanSummary  = wire.ChanSummary  // CTBcast summary certificate shares
)

// Handler consumes a demultiplexed message.
type Handler func(from ids.ID, payload []byte)

// Router wraps one transport endpoint (a simnet node or a nettrans socket
// endpoint) and dispatches by channel tag.
type Router struct {
	node     transport.Endpoint
	handlers [256]Handler
}

// New installs a router as the endpoint's message handler.
func New(node transport.Endpoint) *Router {
	r := &Router{node: node}
	node.SetHandler(r.dispatch)
	return r
}

// Node returns the underlying network endpoint.
func (r *Router) Node() transport.Endpoint { return r.node }

// ID returns the host's identity.
func (r *Router) ID() ids.ID { return r.node.ID() }

// Register installs h for channel ch. Registering a channel twice panics:
// it is always a wiring bug.
func (r *Router) Register(ch uint8, h Handler) {
	if r.handlers[ch] != nil {
		panic(fmt.Sprintf("router: channel %d registered twice on %v", ch, r.node.ID()))
	}
	r.handlers[ch] = h
}

// Send transmits payload to the host to on channel ch.
func (r *Router) Send(to ids.ID, ch uint8, payload []byte) {
	buf := make([]byte, 1+len(payload))
	buf[0] = ch
	copy(buf[1:], payload)
	r.node.Send(to, buf)
}

func (r *Router) dispatch(from ids.ID, payload []byte) {
	if len(payload) == 0 {
		return // malformed frame from a Byzantine sender; drop
	}
	h := r.handlers[payload[0]]
	if h == nil {
		return // channel not wired on this host; drop
	}
	h(from, payload[1:])
}
