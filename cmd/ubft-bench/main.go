// Command ubft-bench regenerates every table and figure of the paper's
// evaluation (§7) from the simulated reproduction:
//
//	ubft-bench -fig 7          # end-to-end application latency
//	ubft-bench -fig 8          # median latency vs request size, 6 systems
//	ubft-bench -fig 9          # latency breakdown fast/slow path
//	ubft-bench -fig 10         # non-equivocation mechanisms
//	ubft-bench -fig 11         # CTBcast tail vs tail latency
//	ubft-bench -table 2        # memory consumption
//	ubft-bench -throughput     # §9 throughput discussion
//	ubft-bench -readmix        # read fast path: unordered quorum reads
//	ubft-bench -all            # everything (EXPERIMENTS.md source)
//
// -samples scales measurement counts (the paper uses >= 10,000); -seed
// makes runs reproducible.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (7, 8, 9, 10, 11)")
	table := flag.Int("table", 0, "table to regenerate (2)")
	throughput := flag.Bool("throughput", false, "run the §9 throughput experiment")
	readmix := flag.Bool("readmix", false, "run the read fast path experiment (50/90/99% reads, fast reads off/on)")
	all := flag.Bool("all", false, "run every experiment")
	seed := flag.Int64("seed", 1, "simulation seed")
	samples := flag.Int("samples", 0, "samples per configuration (0 = defaults)")
	flag.Parse()

	ran := false
	w := os.Stdout
	slowSamples := *samples / 5
	if *samples == 0 {
		slowSamples = 0
	}

	if *all || *fig == 7 {
		bench.PrintFig7(w, bench.Fig7(*seed, *samples))
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *fig == 8 {
		bench.PrintFig8(w, bench.Fig8(*seed, *samples, slowSamples))
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *fig == 9 {
		bench.PrintFig9(w, bench.Fig9(*seed, slowSamples))
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *fig == 10 {
		bench.PrintFig10(w, bench.Fig10(*seed, *samples, slowSamples))
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *fig == 11 {
		bench.PrintFig11(w, bench.Fig11(*seed, *samples))
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *table == 2 {
		bench.PrintTable2(w, bench.Table2(*seed))
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *throughput {
		bench.PrintThroughput(w, bench.Throughput(*seed, *samples))
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *readmix {
		bench.PrintReadMix(w, bench.ReadMixTable(*seed, *samples))
		fmt.Fprintln(w)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
