// Command ubft-bench regenerates every table and figure of the paper's
// evaluation (§7) from the simulated reproduction:
//
//	ubft-bench -fig 7          # end-to-end application latency
//	ubft-bench -fig 8          # median latency vs request size, 6 systems
//	ubft-bench -fig 9          # latency breakdown fast/slow path
//	ubft-bench -fig 10         # non-equivocation mechanisms
//	ubft-bench -fig 11         # CTBcast tail vs tail latency
//	ubft-bench -table 2        # memory consumption
//	ubft-bench -throughput     # §9 throughput discussion
//	ubft-bench -readmix        # read fast path: unordered quorum reads
//	ubft-bench -all            # everything (EXPERIMENTS.md source)
//
// -samples scales measurement counts (the paper uses >= 10,000); -seed
// makes runs reproducible.
//
// -transport=net leaves the simulation entirely: it spawns a local
// multi-process cluster (3 replicas, 2 memory nodes by default) over real
// TCP sockets — each node a re-exec of this binary — and drives a
// closed-loop workload from in-process clients, reporting wall-clock
// p50/p99 latency and kops/s:
//
//	ubft-bench -transport=net                    # print wall-clock numbers
//	ubft-bench -transport=net -json BENCH_wallclock.json
//	ubft-bench -transport=net -profile-dir prof  # collect PGO profiles
//	ubft-bench -transport=net -compare BENCH_wallclock_nopgo.json
//
// `make bench-wallclock` and `make pgo` wrap these.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	// Node mode: this process is one cluster member of a -transport=net
	// run (or a hand-launched fleet), not the bench driver.
	if len(os.Args) > 1 && os.Args[1] == "-node" {
		runNodeMode(os.Args[2:])
		return
	}
	fig := flag.Int("fig", 0, "figure to regenerate (7, 8, 9, 10, 11)")
	table := flag.Int("table", 0, "table to regenerate (2)")
	throughput := flag.Bool("throughput", false, "run the §9 throughput experiment")
	readmix := flag.Bool("readmix", false, "run the read fast path experiment (50/90/99% reads, fast reads off/on)")
	all := flag.Bool("all", false, "run every experiment")
	seed := flag.Int64("seed", 1, "simulation seed")
	samples := flag.Int("samples", 0, "samples per configuration (0 = defaults)")

	var wc wallclockFlags
	transport := flag.String("transport", "sim", "sim (virtual-time experiments) or net (real sockets, wall clock)")
	flag.StringVar(&wc.cfg.App, "app", "kv", "net transport: application (kv, flip)")
	flag.IntVar(&wc.cfg.F, "f", 1, "net transport: replica fault threshold (2f+1 replicas)")
	flag.IntVar(&wc.cfg.MemNodes, "memnodes", 2, "net transport: memory-node pool size (lean fm+1 default)")
	flag.IntVar(&wc.cfg.Clients, "clients", 1, "net transport: client hosts")
	flag.IntVar(&wc.cfg.Batch, "batch", 0, "net transport: leader batch size (0 = off)")
	flag.IntVar(&wc.depth, "depth", 4, "net transport: outstanding requests per client")
	flag.DurationVar(&wc.warmup, "warmup", time.Second, "net transport: discarded warm-up window")
	flag.DurationVar(&wc.measure, "duration", 3*time.Second, "net transport: measured window")
	flag.StringVar(&wc.jsonPath, "json", "", "net transport: write a machine-readable BENCH_<name>.json here")
	flag.StringVar(&wc.compare, "compare", "", "net transport: baseline BENCH json to report a delta against (PGO on vs off)")
	flag.StringVar(&wc.profileDir, "profile-dir", "", "net transport: collect per-node CPU profiles into this directory (PGO)")
	flag.BoolVar(&wc.chaos, "chaos", false, "net transport: SIGKILL a follower replica mid-measure and respawn it (cold rejoin over TCP)")
	flag.Parse()

	if *transport != "sim" && *transport != "net" {
		fmt.Fprintf(os.Stderr, "ubft-bench: unknown -transport %q (want sim or net)\n", *transport)
		os.Exit(2)
	}
	if *transport == "net" {
		wc.cfg.Seed = *seed
		wc.cfg.Fm = 1
		if err := runWallclock(wc); err != nil {
			fmt.Fprintln(os.Stderr, "ubft-bench:", err)
			os.Exit(1)
		}
		return
	}

	ran := false
	w := os.Stdout
	slowSamples := *samples / 5
	if *samples == 0 {
		slowSamples = 0
	}

	if *all || *fig == 7 {
		bench.PrintFig7(w, bench.Fig7(*seed, *samples))
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *fig == 8 {
		bench.PrintFig8(w, bench.Fig8(*seed, *samples, slowSamples))
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *fig == 9 {
		bench.PrintFig9(w, bench.Fig9(*seed, slowSamples))
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *fig == 10 {
		bench.PrintFig10(w, bench.Fig10(*seed, *samples, slowSamples))
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *fig == 11 {
		bench.PrintFig11(w, bench.Fig11(*seed, *samples))
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *table == 2 {
		bench.PrintTable2(w, bench.Table2(*seed))
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *throughput {
		bench.PrintThroughput(w, bench.Throughput(*seed, *samples))
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *readmix {
		bench.PrintReadMix(w, bench.ReadMixTable(*seed, *samples))
		fmt.Fprintln(w)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
