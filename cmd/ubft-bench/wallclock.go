package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/wallclock"
)

// runNodeMode is the re-exec entry: `ubft-bench -node -role ... -peers ...`
// acts as one cluster member process, exactly like cmd/ubft-node. The
// launcher spawns this binary (its own executable) so the wall-clock bench
// needs no second binary on disk — and the PGO profile covers node and
// client code in one build.
func runNodeMode(args []string) {
	var cfg wallclock.NodeConfig
	fs := flag.NewFlagSet("ubft-bench -node", flag.ExitOnError)
	cfg.RegisterFlags(fs)
	fs.Parse(args)
	if err := wallclock.RunNode(cfg, nil); err != nil {
		fmt.Fprintln(os.Stderr, "ubft-bench node:", err)
		os.Exit(1)
	}
}

// wallclockFlags is the -transport=net flag surface of the main mode.
type wallclockFlags struct {
	cfg        wallclock.NodeConfig
	depth      int
	warmup     time.Duration
	measure    time.Duration
	jsonPath   string
	compare    string
	profileDir string
	chaos      bool
}

// runWallclock launches the node fleet (re-exec of this binary), drives
// the closed-loop workload from in-process clients, prints the wall-clock
// numbers, and optionally writes BENCH_<name>.json with a delta against a
// -compare baseline.
func runWallclock(f wallclockFlags) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	if f.profileDir != "" {
		if err := os.MkdirAll(f.profileDir, 0o755); err != nil {
			return err
		}
	}
	lc, err := wallclock.LaunchLocal([]string{exe, "-node"}, f.cfg, f.profileDir)
	if err != nil {
		return err
	}
	defer lc.Stop()

	opts := wallclock.BenchOptions{
		Cfg:        f.cfg,
		ClientAddr: lc.ClientAddr,
		Peers:      lc.PeersArg,
		Depth:      f.depth,
		Warmup:     f.warmup,
		Measure:    f.measure,
	}
	if f.chaos {
		// Crash-test a follower (never the view-0 leader, so the workload
		// keeps its leader while the victim is down): SIGKILL its process a
		// third into the measure window, respawn it in cold-rejoin mode at
		// two thirds. The bench's own gates — zero failed operations, full
		// drain — are the pass criteria.
		victim := lc.ReplicaIDs[len(lc.ReplicaIDs)-1]
		opts.Chaos = &wallclock.ChaosSchedule{
			Kill:    func() error { return lc.KillNode(victim) },
			Restart: func() error { return lc.RestartNode(victim) },
		}
	}
	if f.profileDir != "" {
		opts.CPUProfile = f.profileDir + "/client.pprof"
	}
	res, err := wallclock.RunBench(opts)
	if err != nil {
		return err
	}

	if f.compare != "" {
		base, err := wallclock.LoadResult(f.compare)
		if err != nil {
			return err
		}
		res.Compare(base)
	}

	pgo := "off"
	if res.PGO {
		pgo = "on"
	}
	if res.Chaos {
		fmt.Printf("chaos: follower SIGKILLed at measure/3, respawned (cold rejoin) at 2/3 — zero failed ops, full drain\n")
	}
	fmt.Printf("wall-clock %s over %s: %d replicas, %d memory nodes, %d clients x depth %d (pgo %s)\n",
		res.Workload, res.Transport, res.Replicas, res.MemNodes, res.Clients, res.Depth, pgo)
	fmt.Printf("  %d ops in %.2fs: %.1f kops/s, p50 %.0fus, p99 %.0fus, %.1f allocs/op (client)\n",
		res.Ops, res.ElapsedS, res.Kops, res.P50us, res.P99us, res.AllocsOp)
	if f.compare != "" {
		fmt.Printf("  vs %s: kops %+.1f%%, p50 %+.1f%% (positive = this run faster)\n",
			f.compare, res.KopsDeltaPct, res.P50DeltaPct)
	}
	if f.jsonPath != "" {
		if err := res.WriteJSON(f.jsonPath); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", f.jsonPath)
	}
	return nil
}
