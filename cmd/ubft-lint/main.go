// Command ubft-lint runs the project-invariant static-analysis suite
// (internal/analysis) over the module: determinism, poolsafety,
// tagregistry, appagnostic and doclint. It exits non-zero on any unwaived
// finding, and — when the full suite runs — on unused waivers or a waiver
// tally above the budget, so the waiver count cannot grow silently.
//
// Usage:
//
//	ubft-lint [-passes determinism,poolsafety,tagregistry,appagnostic,doclint]
//	          [-max-waivers N] [-C dir] [packages]
//
// The default package pattern is ./... at the module root; -C points at a
// different module. -max-waivers defaults to analysis.WaiverBudget.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	var (
		passNames  = flag.String("passes", "all", "comma-separated pass names, or 'all'")
		maxWaivers = flag.Int("max-waivers", analysis.WaiverBudget, "fail if more waiver directives than this are in effect (full suite only)")
		chdir      = flag.String("C", "", "module root (default: walk up from cwd to go.mod)")
	)
	flag.Parse()

	root := *chdir
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fatal(err)
		}
	}

	passes, full, err := selectPasses(*passNames)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	w, err := analysis.Load(root, patterns...)
	if err != nil {
		fatal(err)
	}

	res := analysis.Apply(w, passes, analysis.Options{CheckUnused: full})
	for _, f := range res.Findings {
		pos := f.Pos
		if rel, err := filepath.Rel(root, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Printf("%s: [%s] %s\n", pos, f.Pass, f.Msg)
	}

	var parts []string
	for _, d := range sortedKeys(res.ByPass) {
		parts = append(parts, fmt.Sprintf("%s=%d", d, res.ByPass[d]))
	}
	detail := ""
	if len(parts) > 0 {
		detail = " (" + strings.Join(parts, " ") + ")"
	}
	fmt.Printf("ubft-lint: %d finding(s), %d waiver(s) in effect%s, budget %d\n",
		len(res.Findings), res.Waivers, detail, *maxWaivers)

	if len(res.Findings) > 0 {
		os.Exit(1)
	}
	if full && res.Waivers > *maxWaivers {
		fmt.Printf("ubft-lint: waiver tally %d exceeds budget %d — remove waivers or raise analysis.WaiverBudget deliberately\n",
			res.Waivers, *maxWaivers)
		os.Exit(1)
	}
}

// selectPasses resolves -passes; full reports whether the whole suite runs
// (which arms the unused-waiver and budget checks).
func selectPasses(names string) ([]analysis.Pass, bool, error) {
	all := analysis.AllPasses()
	if names == "all" || names == "" {
		return all, true, nil
	}
	byName := make(map[string]analysis.Pass, len(all))
	for _, p := range all {
		byName[p.Name()] = p
	}
	var out []analysis.Pass
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		p, ok := byName[n]
		if !ok {
			return nil, false, fmt.Errorf("ubft-lint: unknown pass %q (have: determinism, poolsafety, tagregistry, appagnostic, doclint)", n)
		}
		out = append(out, p)
	}
	return out, len(out) == len(all), nil
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("ubft-lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func sortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
