// Command ubft-demo walks through uBFT's headline behaviours in one run:
// microsecond-scale replication of a key-value store, tolerance of a
// crashed memory node, and a full view change after the leader fails.
package main

import (
	"fmt"

	ubft "repro"
	"repro/internal/app"
)

func main() {
	fmt.Println("== uBFT demo: 3 replicas, 3 memory nodes, 1 client ==")
	u := ubft.New(ubft.Options{
		Seed:              42,
		NewApp:            func() ubft.StateMachine { return ubft.NewKV(0) },
		ViewChangeTimeout: 500 * ubft.Microsecond,
		SlowPathDelay:     100 * ubft.Microsecond,
		CTBSlowDelay:      100 * ubft.Microsecond,
	})
	defer u.Stop()

	fmt.Println("\n-- phase 1: fast-path replication --")
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("user:%d", i)
		res, lat := u.InvokeSync(0, app.EncodeKVSet([]byte(key), []byte("alive")), 50*ubft.Millisecond)
		fmt.Printf("SET %-8s -> status=%d in %v\n", key, res[0], lat)
	}
	res, lat := u.InvokeSync(0, app.EncodeKVGet([]byte("user:1")), 50*ubft.Millisecond)
	fmt.Printf("GET user:1  -> %q in %v (Byzantine-tolerant, f=1)\n", res[1:], lat)

	fmt.Println("\n-- phase 2: crash a memory node (f_m = 1 tolerated) --")
	u.MemNodes[0].Crash()
	res, lat = u.InvokeSync(0, app.EncodeKVSet([]byte("after-mem-crash"), []byte("ok")), 50*ubft.Millisecond)
	fmt.Printf("SET after-mem-crash -> status=%d in %v\n", res[0], lat)

	fmt.Println("\n-- phase 3: crash the leader (view change) --")
	u.Net.Node(u.ReplicaIDs[0]).Proc().Crash()
	res, lat = u.InvokeSync(0, app.EncodeKVSet([]byte("after-leader-crash"), []byte("ok")), 500*ubft.Millisecond)
	if res == nil {
		fmt.Println("request failed!")
		return
	}
	fmt.Printf("SET after-leader-crash -> status=%d in %v\n", res[0], lat)
	for _, i := range []int{1, 2} {
		fmt.Printf("replica %d now in view %d (leader rotated)\n", i, u.Replicas[i].View())
	}

	fmt.Println("\n-- state agreement across survivors --")
	s1, s2 := u.Apps[1].Snapshot(), u.Apps[2].Snapshot()
	fmt.Printf("replica1 state == replica2 state: %v\n", string(s1) == string(s2))
}
