// Command ubft-node runs one member of a uBFT deployment as its own OS
// process over the real-socket transport: a replica, a memory node or a
// client host. Every process of a deployment must be started with the same
// shape flags (-f, -fm, -memnodes, -clients, -seed, -window, -tail,
// -batch, -app) and the same static -peers table; identities, keys and
// consensus configuration are derived deterministically from them, so no
// coordination service is involved.
//
// A 3-replica (f=1), 2-memory-node deployment on one machine:
//
//	PEERS='0=127.0.0.1:4000,1=127.0.0.1:4001,2=127.0.0.1:4002,100=127.0.0.1:4100,101=127.0.0.1:4101,200=127.0.0.1:4200'
//	ubft-node -role replica -index 0 -listen 127.0.0.1:4000 -memnodes 2 -peers "$PEERS" &
//	ubft-node -role replica -index 1 -listen 127.0.0.1:4001 -memnodes 2 -peers "$PEERS" &
//	ubft-node -role replica -index 2 -listen 127.0.0.1:4002 -memnodes 2 -peers "$PEERS" &
//	ubft-node -role memnode -index 0 -listen 127.0.0.1:4100 -memnodes 2 -peers "$PEERS" &
//	ubft-node -role memnode -index 1 -listen 127.0.0.1:4101 -memnodes 2 -peers "$PEERS" &
//
// The node exits on SIGINT/SIGTERM or when stdin reaches EOF (so a fleet
// spawned by a launcher dies with it). `ubft-bench -transport=net` does
// all of the above automatically.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/wallclock"
)

func main() {
	var cfg wallclock.NodeConfig
	fs := flag.NewFlagSet("ubft-node", flag.ExitOnError)
	cfg.RegisterFlags(fs)
	fs.Parse(os.Args[1:])
	if err := wallclock.RunNode(cfg, nil); err != nil {
		fmt.Fprintln(os.Stderr, "ubft-node:", err)
		os.Exit(1)
	}
}
