# CI entry points for the uBFT reproduction. `make ci` is what a PR gate
# should run: build, lint (vet + the ubft-lint invariant suite), full
# tests, a smoke pass over every benchmark (one iteration each, so the
# perf harness itself is exercised), and the fuzz seeds.

GO ?= go

.PHONY: all build test vet lint doc-lint shard-opcode-gate race bounded-mem byz-suite chaos-suite bench-smoke bench bench-shard bench-crossshard bench-txn bench-read bench-wallclock pgo fuzz-smoke fuzz-byz ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The project-invariant static-analysis suite (internal/analysis, driven
# by cmd/ubft-lint): determinism, pool aliasing, the wire-tag registry,
# the shard capability boundary and package docs, with the waiver tally
# checked against the budget. Folds `go vet` in so `make lint` is the one
# static gate.
lint: vet
	$(GO) run ./cmd/ubft-lint

race:
	$(GO) test -race ./...

# The bounded-memory regression gate: leader map cardinality must stay flat
# across checkpoint intervals (uBFT's finite-memory claim), the per-client
# exactly-once state must age out churned clients, and the MVCC version
# chains must stay flat as the GC horizon ratchets with checkpoints.
bounded-mem:
	$(GO) test -run 'TestLeaderMemoryBounded|TestLeaderMapsFlatAcrossIntervals|TestClientExecStateAged|TestVersionGCBounded' ./internal/consensus/

# One iteration of every benchmark in short mode: catches harness rot and
# prints allocs/op for the hot-path benchmarks on every PR.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem -short .

# The full benchmark pass used for recorded before/after numbers
# (benchstat-ready with -count).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkFig8_UBFTFast_64B|BenchmarkFig10_CTBFast_16B' -benchtime 3x -benchmem -count 5 .

# One iteration of the horizontal-scaling benchmark (S=1..8 sharded KV):
# exercises the shard layer end to end and prints decided-req/virtual-sec.
bench-shard:
	$(GO) test -run '^$$' -bench BenchmarkShardScaling -benchtime 1x -benchmem -short .

# One iteration of the cross-shard mix benchmark: scatter-gather MGETs and
# 2PC multi-key writes at 0/10/50% cross-shard fractions (the 0% row is
# bit-identical to the single-shard baseline, gated by
# TestCrossShardZeroFractionMatchesBaseline).
bench-crossshard:
	$(GO) test -run '^$$' -bench '^BenchmarkCrossShard$$' -benchtime 1x -benchmem -short .

# One iteration of the capability-API transaction benchmarks: the same
# cross-shard mix over the Memcached-style store (KVMGet/KVMSet) and the
# symbol-sharded order matching engine (OpTops/OpPair), all driven through
# the generic Router/Fragmenter/TxnParticipant interfaces.
bench-txn:
	$(GO) test -run '^$$' -bench '^BenchmarkCrossShard(KV|OrderBook)$$' -benchtime 1x -benchmem -short .

# One iteration of the read fast path benchmark: the read-dominant mix at
# 50/90/99% reads with unordered f+1 quorum reads off and on (the off rows
# are bit-identical to the plain driver, gated by
# TestReadMixFastOffMatchesPlainDriver; the >= 2x order-book speedup at 90%
# reads is gated by TestReadMixFastSpeedup).
bench-read:
	$(GO) test -run '^$$' -bench '^BenchmarkReadMix$$' -benchtime 1x -benchmem -short .

# The shard layer must stay application-agnostic: its non-test sources may
# only touch the app package through the capability interfaces and the
# generic transaction envelope — never an app-specific opcode, status,
# encoder or constructor (the api_redesign acceptance bar). Now a thin
# alias for the type-aware ubft-lint pass that replaced the old grep.
shard-opcode-gate:
	$(GO) run ./cmd/ubft-lint -passes appagnostic

# Every internal package must carry a package doc comment so `go doc` is
# useful across the whole tree (docs/ARCHITECTURE.md relies on them).
# A thin alias for the AST-based ubft-lint pass that replaced the old grep.
doc-lint:
	$(GO) run ./cmd/ubft-lint -passes doclint

# A short real-socket wall-clock run: the node fleet (3 replicas + 2 memory
# nodes) as OS processes on loopback, clients in-process, measured with the
# wall clock — real p50/p99 latency and kops/s, written to
# BENCH_wallclock.json. The CI smoke for the nettrans transport, the local
# launcher and the closed-loop bench driver. The second run is the chaos
# gate: a follower ubft-node is SIGKILLed a third into the measure window
# and respawned in cold-rejoin mode at two thirds; the bench fails unless
# it drains with zero failed operations.
bench-wallclock:
	@mkdir -p bin
	$(GO) build -o bin/ubft-bench ./cmd/ubft-bench
	./bin/ubft-bench -transport=net -warmup 300ms -duration 1s -depth 4 -json BENCH_wallclock.json
	./bin/ubft-bench -transport=net -chaos -warmup 300ms -duration 3s -depth 4

# Profile-guided optimization round trip: run the wall-clock bench with CPU
# profiling on every node process and the client, merge the profiles into
# cmd/ubft-bench/default.pgo (go build picks that file up automatically),
# rebuild, and re-run reporting the PGO-on vs PGO-off delta
# (BENCH_wallclock_pgo.json, kops/p50 deltas vs BENCH_wallclock_nopgo.json).
pgo:
	@mkdir -p bin
	rm -f cmd/ubft-bench/default.pgo
	rm -rf bin/pgo-profiles && mkdir -p bin/pgo-profiles
	$(GO) build -o bin/ubft-bench ./cmd/ubft-bench
	./bin/ubft-bench -transport=net -warmup 500ms -duration 3s -depth 4 \
		-profile-dir bin/pgo-profiles -json BENCH_wallclock_nopgo.json
	$(GO) tool pprof -proto bin/pgo-profiles/*.pprof > cmd/ubft-bench/default.pgo
	$(GO) build -o bin/ubft-bench ./cmd/ubft-bench
	./bin/ubft-bench -transport=net -warmup 500ms -duration 3s -depth 4 \
		-compare BENCH_wallclock_nopgo.json -json BENCH_wallclock_pgo.json

# The Byzantine scenario suite: every adversarial policy against every
# transactional app in every read mode, 8 seeds per cell, with the pass
# matrix printed at the end (-v). The defense-off trip tests and the 2PC
# commit-phase recovery regression ride along.
byz-suite:
	BYZ_SEEDS=8 $(GO) test -v -run 'TestByzMatrix' ./internal/byz/scenario/
	$(GO) test -run 'TestByzDeterministicPerSeed|TestTrip|TestStrongReadLoneLiar' ./internal/byz/scenario/
	$(GO) test -run 'TestCommitPhaseRecovery' ./internal/shard/

# The crash-restart chaos suite: every supported Byzantine policy crossed
# with a seeded kill/restart schedule (a correct follower SIGKILLed and
# cold-rejoined per cycle while the adversary stays live), 6 seeds per
# cell, pass matrix printed at the end (-v). The restart-determinism gate
# (same seed => bit-identical final snapshots across runs) and the
# simulated-cluster restart regressions ride along.
chaos-suite:
	CHAOS_SEEDS=6 $(GO) test -v -run 'TestChaosMatrix' ./internal/byz/scenario/
	$(GO) test -run 'TestChaosDeterministicPerSeed' ./internal/byz/scenario/
	$(GO) test -run 'TestRestart|TestRepeatedRestartCycles' ./internal/cluster/

# Fuzz the wire codec briefly (the seeds always run under `make test`).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzReader -fuzztime 10s ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzRoundTrip -fuzztime 10s ./internal/wire/

# Fuzz the adversarial read wire surface briefly: hostile tag-31/33 read
# replies at the client (must never panic or inflate the read floor) and
# hostile tag-30/32 requests at a replica (the seeds run under `make test`).
fuzz-byz:
	$(GO) test -run '^$$' -fuzz FuzzClientReadReply -fuzztime 10s ./internal/consensus/
	$(GO) test -run '^$$' -fuzz FuzzReplicaReadRequest -fuzztime 10s ./internal/consensus/

ci: build lint test race bounded-mem byz-suite chaos-suite bench-smoke bench-shard bench-crossshard bench-txn bench-read bench-wallclock pgo
