# CI entry points for the uBFT reproduction. `make ci` is what a PR gate
# should run: build, vet, full tests, a smoke pass over every benchmark
# (one iteration each, so the perf harness itself is exercised), and the
# fuzz seeds.

GO ?= go

.PHONY: all build test vet race bounded-mem bench-smoke bench bench-shard fuzz-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/wire/ ./internal/msgring/ ./internal/tbcast/ ./internal/ctbcast/ ./internal/shard/

# The bounded-memory regression gate: leader map cardinality must stay flat
# across checkpoint intervals (uBFT's finite-memory claim).
bounded-mem:
	$(GO) test -run 'TestLeaderMemoryBounded|TestLeaderMapsFlatAcrossIntervals' ./internal/consensus/

# One iteration of every benchmark in short mode: catches harness rot and
# prints allocs/op for the hot-path benchmarks on every PR.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem -short .

# The full benchmark pass used for recorded before/after numbers
# (benchstat-ready with -count).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkFig8_UBFTFast_64B|BenchmarkFig10_CTBFast_16B' -benchtime 3x -benchmem -count 5 .

# One iteration of the horizontal-scaling benchmark (S=1..8 sharded KV):
# exercises the shard layer end to end and prints decided-req/virtual-sec.
bench-shard:
	$(GO) test -run '^$$' -bench BenchmarkShardScaling -benchtime 1x -benchmem -short .

# Fuzz the wire codec briefly (the seeds always run under `make test`).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzReader -fuzztime 10s ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzRoundTrip -fuzztime 10s ./internal/wire/

ci: build vet test race bounded-mem bench-smoke bench-shard
