# CI entry points for the uBFT reproduction. `make ci` is what a PR gate
# should run: build, vet, full tests, a smoke pass over every benchmark
# (one iteration each, so the perf harness itself is exercised), and the
# fuzz seeds.

GO ?= go

.PHONY: all build test vet race bench-smoke bench fuzz-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/wire/ ./internal/msgring/ ./internal/tbcast/ ./internal/ctbcast/

# One iteration of every benchmark in short mode: catches harness rot and
# prints allocs/op for the hot-path benchmarks on every PR.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem -short .

# The full benchmark pass used for recorded before/after numbers
# (benchstat-ready with -count).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkFig8_UBFTFast_64B|BenchmarkFig10_CTBFast_16B' -benchtime 3x -benchmem -count 5 .

# Fuzz the wire codec briefly (the seeds always run under `make test`).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzReader -fuzztime 10s ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzRoundTrip -fuzztime 10s ./internal/wire/

ci: build vet test race bench-smoke
