package ubft

import (
	"testing"

	"repro/internal/cluster"
)

// Tests of the public façade: everything a downstream user touches.

func TestFacadeQuickstart(t *testing.T) {
	u := New(Options{Seed: 1})
	defer u.Stop()
	res, lat := u.InvokeSync(0, []byte("facade"), 10*Millisecond)
	if string(res) != "edacaf" {
		t.Fatalf("result = %q", res)
	}
	if lat <= 0 || lat > 100*Microsecond {
		t.Fatalf("latency = %v", lat)
	}
}

func TestFacadeApplications(t *testing.T) {
	if NewFlip() == nil || NewKV(0) == nil || NewRKV() == nil || NewOrderBook() == nil {
		t.Fatal("application constructors returned nil")
	}
	var sm StateMachine = NewKV(4)
	if sm.Snapshot() == nil {
		t.Fatal("StateMachine interface not satisfied usefully")
	}
}

func TestFacadeBaselines(t *testing.T) {
	un := NewUnreplicated(1, nil)
	if res, _ := un.InvokeSync([]byte("ab"), 10*Millisecond); string(res) != "ba" {
		t.Fatalf("unreplicated: %q", res)
	}
	mu := NewMu(cluster.MuOptions{Seed: 1})
	defer mu.Stop()
	if res, _ := mu.InvokeSync([]byte("ab"), 10*Millisecond); string(res) != "ba" {
		t.Fatalf("mu: %q", res)
	}
	mb := NewMinBFT(cluster.MinBFTOptions{Seed: 1, Mode: MinBFTHMAC})
	if res, _ := mb.InvokeSync([]byte("ab"), 100*Millisecond); string(res) != "ba" {
		t.Fatalf("minbft: %q", res)
	}
}

func TestFacadeModeConstants(t *testing.T) {
	// The re-exported mode constants must wire through to real behaviour.
	u := New(Options{Seed: 1, DisableFastPath: true, CTBMode: SlowOnly})
	defer u.Stop()
	res, lat := u.InvokeSync(0, []byte("slow"), 100*Millisecond)
	if string(res) != "wols" {
		t.Fatalf("slow mode result: %q", res)
	}
	if lat < 100*Microsecond {
		t.Fatalf("SlowOnly mode suspiciously fast: %v", lat)
	}
}
