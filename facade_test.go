package ubft

import (
	"testing"

	"repro/internal/app"
	"repro/internal/cluster"
)

// Tests of the public façade: everything a downstream user touches.

func TestFacadeQuickstart(t *testing.T) {
	u := New(Options{Seed: 1})
	defer u.Stop()
	res, lat := u.InvokeSync(0, []byte("facade"), 10*Millisecond)
	if string(res) != "edacaf" {
		t.Fatalf("result = %q", res)
	}
	if lat <= 0 || lat > 100*Microsecond {
		t.Fatalf("latency = %v", lat)
	}
}

func TestFacadeApplications(t *testing.T) {
	if NewFlip() == nil || NewKV(0) == nil || NewRKV() == nil || NewOrderBook() == nil {
		t.Fatal("application constructors returned nil")
	}
	var sm StateMachine = NewKV(4)
	if sm.Snapshot() == nil {
		t.Fatal("StateMachine interface not satisfied usefully")
	}
}

// TestFacadeCapabilities: the shipped applications implement the layered
// capability interfaces, Route derives shard placement from them, and the
// deprecated RouteFunc-era helpers still answer through the new path.
func TestFacadeCapabilities(t *testing.T) {
	for name, sm := range map[string]StateMachine{
		"kv": NewKV(0), "rkv": NewRKV(), "orderbook": NewOrderBook(),
	} {
		if _, ok := sm.(Router); !ok {
			t.Fatalf("%s does not implement Router", name)
		}
		if _, ok := sm.(Fragmenter); !ok {
			t.Fatalf("%s does not implement Fragmenter", name)
		}
		if _, ok := sm.(TxnParticipant); !ok {
			t.Fatalf("%s does not implement TxnParticipant", name)
		}
	}
	// Flip opts out of every capability: it cannot be sharded.
	if _, ok := NewFlip().(Router); ok {
		t.Fatal("Flip unexpectedly implements Router")
	}

	const shards = 4
	key := []byte("route-probe")
	s, err := Route(NewRKV(), app.EncodeRGet(key), shards)
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if s2, err := RKVRoute(app.EncodeRGet(key), shards); err != nil || s2 != s {
		t.Fatalf("deprecated RKVRoute = (%d, %v), Route = %d", s2, err, s)
	}
	if s2, err := KVRoute(app.EncodeKVGet(key), shards); err != nil || s2 != app.ShardOfKey(key, shards) {
		t.Fatalf("deprecated KVRoute = (%d, %v)", s2, err)
	}
	// A custom application built on the exported LockTable participates in
	// the generic 2PC envelope without any shard-layer glue.
	installed := false
	lt := NewLockTable(
		func(frag []byte) ([][]byte, error) { return [][]byte{frag}, nil },
		func(frag []byte) []byte { installed = true; return []byte("receipt") },
		func(req []byte) []byte { return req },
	)
	if st := lt.Prepare(1, []byte("k")); st != app.StatusOK {
		t.Fatalf("custom Prepare: %d", st)
	}
	if st, receipt := lt.Commit(1); st != app.StatusOK || !installed || string(receipt) != "receipt" {
		t.Fatalf("custom Commit: status=%d installed=%v receipt=%q", st, installed, receipt)
	}
}

func TestFacadeBaselines(t *testing.T) {
	un := NewUnreplicated(1, nil)
	if res, _ := un.InvokeSync([]byte("ab"), 10*Millisecond); string(res) != "ba" {
		t.Fatalf("unreplicated: %q", res)
	}
	mu := NewMu(cluster.MuOptions{Seed: 1})
	defer mu.Stop()
	if res, _ := mu.InvokeSync([]byte("ab"), 10*Millisecond); string(res) != "ba" {
		t.Fatalf("mu: %q", res)
	}
	mb := NewMinBFT(cluster.MinBFTOptions{Seed: 1, Mode: MinBFTHMAC})
	if res, _ := mb.InvokeSync([]byte("ab"), 100*Millisecond); string(res) != "ba" {
		t.Fatalf("minbft: %q", res)
	}
}

func TestFacadeModeConstants(t *testing.T) {
	// The re-exported mode constants must wire through to real behaviour.
	u := New(Options{Seed: 1, DisableFastPath: true, CTBMode: SlowOnly})
	defer u.Stop()
	res, lat := u.InvokeSync(0, []byte("slow"), 100*Millisecond)
	if string(res) != "wols" {
		t.Fatalf("slow mode result: %q", res)
	}
	if lat < 100*Microsecond {
		t.Fatalf("SlowOnly mode suspiciously fast: %v", lat)
	}
}
