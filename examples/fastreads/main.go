// fastreads demonstrates the unordered read fast path: read-only requests
// skip the ordering pipeline entirely — one round trip to all 2f+1
// replicas, accepted on f+1 matching result digests at a compatible state
// version — while every failure mode (digest mismatch, stale replicas,
// transaction-locked keys, timeouts) falls back to the always-correct
// ordered path. On a read-dominant serving workload this roughly halves
// read latency and more than doubles throughput at 90% reads.
//
//	go run ./examples/fastreads
package main

import (
	"fmt"

	ubft "repro"
	"repro/internal/app"
	"repro/internal/bench"
)

func main() {
	fmt.Println("== uBFT read fast path: one key, fast vs ordered ==")
	demoLatency()

	fmt.Println("\n== Read-dominant mix (order book, S=2, 4 in flight/client) ==")
	fmt.Printf("%-7s %-6s %14s %12s %12s %10s\n", "read%", "fast", "kops/s (virt)", "read p50", "write p50", "fallbacks")
	for _, frac := range []float64{0.50, 0.90, 0.99} {
		for _, fast := range []bool{false, true} {
			res := bench.ReadMixOrder(1, 2, 4, 300, frac, fast)
			fmt.Printf("%-7.0f %-6v %14.1f %12v %12v %10d\n",
				frac*100, fast, res.OpsPerSec/1000,
				res.ReadRec.Percentile(50), res.WriteRec.Percentile(50), res.Fallbacks)
		}
	}
}

func demoLatency() {
	for _, fast := range []bool{false, true} {
		d := ubft.NewSharded(ubft.ShardOptions{
			Seed:      7,
			NewApp:    func(int) ubft.StateMachine { return app.NewKV(0) },
			FastReads: fast,
		})
		key := []byte("greeting")
		if res, _, err := d.InvokeSync(0, app.EncodeKVSet(key, []byte("hello")), 50*ubft.Millisecond); err != nil || res[0] != app.KVStored {
			panic(fmt.Sprintf("seed write: %v %v", res, err))
		}
		res, lat, err := d.InvokeSync(0, app.EncodeKVMGet(key), 50*ubft.Millisecond)
		if err != nil {
			panic(err)
		}
		mode := "ordered (full consensus)"
		if fast {
			mode = "fast (f+1 quorum)     "
		}
		fastN, fallbacks := d.Client(0).ReadStats()
		fmt.Printf("  %s  read=%x  latency=%v  fast=%d fallbacks=%d\n", mode, res, lat, fastN, fallbacks)
		d.Stop()
	}
}
