// fastreads demonstrates the read consistency ladder built on the MVCC
// versioned stores. Monotonic fast reads skip the ordering pipeline
// entirely — one round trip to all 2f+1 replicas, accepted on f+1
// matching result digests at a compatible state version. Snapshot
// scatter reads pin every cross-shard leg to a per-group frontier
// version, so a read racing a 2PC transaction observes all of it or
// none. Strong reads require all 2f+1 replicas to agree on
// (result, version) — linearizable across clients. Every failure mode
// falls back to the always-correct ordered path.
//
//	go run ./examples/fastreads
package main

import (
	"fmt"

	ubft "repro"
	"repro/internal/app"
	"repro/internal/bench"
)

func main() {
	fmt.Println("== uBFT point read, one key: ordered vs fast vs strong ==")
	demoLatency()

	fmt.Println("\n== Snapshot scatter read across 2 shards (pinned legs) ==")
	demoSnapshot()

	fmt.Println("\n== Read-dominant mix (order book, S=2, 4 in flight/client) ==")
	fmt.Printf("%-7s %-6s %14s %12s %12s %10s\n", "read%", "fast", "kops/s (virt)", "read p50", "write p50", "fallbacks")
	for _, frac := range []float64{0.50, 0.90, 0.99} {
		for _, fast := range []bool{false, true} {
			res := bench.ReadMixOrder(1, 2, 4, 300, frac, fast)
			fmt.Printf("%-7.0f %-6v %14.1f %12v %12v %10d\n",
				frac*100, fast, res.OpsPerSec/1000,
				res.ReadRec.Percentile(50), res.WriteRec.Percentile(50), res.Fallbacks)
		}
	}
}

// demoLatency prices the three consistency levels on the same single-key
// GET: ordered (full consensus), monotonic fast (f+1 quorum), strong
// (2f+1 quorum).
func demoLatency() {
	for _, mode := range []struct {
		name         string
		fast, strong bool
	}{
		{"ordered (consensus slot) ", false, false},
		{"fast     (f+1 quorum)    ", true, false},
		{"strong   (2f+1 quorum)   ", false, true},
	} {
		d := ubft.NewSharded(ubft.ShardOptions{
			Seed:        7,
			NewApp:      func(int) ubft.StateMachine { return app.NewKV(0) },
			FastReads:   mode.fast,
			StrongReads: mode.strong,
		})
		key := []byte("greeting")
		if res, _, err := d.InvokeSync(0, app.EncodeKVSet(key, []byte("hello")), 50*ubft.Millisecond); err != nil || res[0] != app.KVStored {
			panic(fmt.Sprintf("seed write: %v %v", res, err))
		}
		res, lat, err := d.InvokeSync(0, app.EncodeKVGet(key), 50*ubft.Millisecond)
		if err != nil {
			panic(err)
		}
		fastN, fallbacks := d.Client(0).ReadStats()
		strongN := d.Client(0).StrongReadStats()
		fmt.Printf("  %s read=%x  latency=%v  fast=%d strong=%d fallbacks=%d\n",
			mode.name, res, lat, fastN, strongN, fallbacks)
		d.Stop()
	}
}

// demoSnapshot runs a cross-shard MGET with fast reads on: both legs are
// pinned to their group's frontier version, so the scatter read is one
// consistent cut even while a cross-shard transaction commits.
func demoSnapshot() {
	const shards = 2
	d := ubft.NewSharded(ubft.ShardOptions{
		Seed:       7,
		Shards:     shards,
		NumClients: 2,
		NewApp:     func(int) ubft.StateMachine { return app.NewKV(0) },
		FastReads:  true,
	})
	defer d.Stop()
	k0, k1 := keyOn(0, shards), keyOn(1, shards)
	for _, k := range [][]byte{k0, k1} {
		if res, _, err := d.InvokeSync(0, app.EncodeKVSet(k, []byte("gen-0")), 50*ubft.Millisecond); err != nil || res[0] != app.KVStored {
			panic(fmt.Sprintf("seed write: %v %v", res, err))
		}
	}
	// Kick off a cross-shard transactional write and immediately race a
	// snapshot scatter read against it.
	if _, err := d.Client(0).Invoke(app.EncodeKVMSet(
		app.Pair{Key: k0, Val: []byte("gen-1")},
		app.Pair{Key: k1, Val: []byte("gen-1")},
	), func([]byte, ubft.Duration) {}); err != nil {
		panic(err)
	}
	res, lat, err := d.InvokeSync(1, app.EncodeKVMGet(k0, k1), 50*ubft.Millisecond)
	if err != nil {
		panic(err)
	}
	fastN, fallbacks := d.Client(1).ReadStats()
	fmt.Printf("  scatter read=%x  latency=%v  fast=%d fallbacks=%d\n", res, lat, fastN, fallbacks)
	fmt.Println("  (both legs carry the same generation — pinned versions forbid a torn read)")
}

// keyOn returns a probe key hashing onto shard s.
func keyOn(s, shards int) []byte {
	for i := 0; ; i++ {
		k := []byte(fmt.Sprintf("key-%02d", i))
		if app.ShardOfKey(k, shards) == s {
			return k
		}
	}
}
