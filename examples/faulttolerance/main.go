// faulttolerance demonstrates uBFT's failure handling: the slow path under
// a crashed follower (the fast path needs unanimity), a memory-node crash,
// and a complete view change after the leader fails.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"

	ubft "repro"
)

func main() {
	u := ubft.New(ubft.Options{
		Seed:              11,
		ViewChangeTimeout: 500 * ubft.Microsecond,
		SlowPathDelay:     80 * ubft.Microsecond,
		CTBSlowDelay:      80 * ubft.Microsecond,
	})
	defer u.Stop()

	fmt.Println("== phase 0: healthy cluster, fast path ==")
	res, lat := u.InvokeSync(0, []byte("healthy"), 50*ubft.Millisecond)
	fmt.Printf("flip -> %q in %v\n", res, lat)

	fmt.Println("\n== phase 1: crash a follower; fallback engages the slow path ==")
	u.Net.Node(u.ReplicaIDs[2]).Proc().Crash()
	res, lat = u.InvokeSync(0, []byte("degraded"), 200*ubft.Millisecond)
	fmt.Printf("flip -> %q in %v (signatures + disaggregated memory now in use)\n", res, lat)
	if u.Replicas[0].SlowDecides > 0 {
		fmt.Printf("replica 0 slow-path decisions: %d\n", u.Replicas[0].SlowDecides)
	}

	fmt.Println("\n== phase 2: crash the leader too? That would exceed f=1. ==")
	fmt.Println("Instead: heal the follower scenario by restarting fresh and crashing the leader only.")

	u2 := ubft.New(ubft.Options{
		Seed:              12,
		ViewChangeTimeout: 500 * ubft.Microsecond,
		SlowPathDelay:     80 * ubft.Microsecond,
		CTBSlowDelay:      80 * ubft.Microsecond,
	})
	defer u2.Stop()
	u2.InvokeSync(0, []byte("warm"), 50*ubft.Millisecond)
	u2.Net.Node(u2.ReplicaIDs[0]).Proc().Crash()
	res, lat = u2.InvokeSync(0, []byte("new-leader"), 500*ubft.Millisecond)
	fmt.Printf("after leader crash: flip -> %q in %v\n", res, lat)
	fmt.Printf("replica 1 view=%d, replica 2 view=%d (round-robin rotation)\n",
		u2.Replicas[1].View(), u2.Replicas[2].View())
	fmt.Printf("view changes observed at replica 1: %d\n", u2.Replicas[1].ViewChanges)
}
