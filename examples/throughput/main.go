// throughput demonstrates the §9 discussion: uBFT's closed-loop throughput
// is roughly the inverse of its latency; interleaving two requests doubles
// it; and this repository's batching extension (which the paper names but
// does not implement) multiplies it again by sharing consensus slots.
//
//	go run ./examples/throughput
package main

import (
	"fmt"
	"math/rand"

	ubft "repro"
	"repro/internal/bench"
	"repro/internal/cluster"
)

func main() {
	fmt.Println("== uBFT throughput: 32 B requests, closed loop ==")
	fmt.Printf("%-28s %12s %12s\n", "configuration", "kops/s", "p50 latency")

	run := func(name string, opts cluster.Options, depth int) {
		s := bench.NewUBFTSystem(opts)
		defer s.Stop()
		wl := bench.NewFlipWorkload(32, rand.New(rand.NewSource(1)))
		ops, rec := bench.RunPipelined(s, wl, depth, 600)
		p50 := ubft.Duration(0)
		if rec.Count() > 0 {
			p50 = rec.Median()
		}
		fmt.Printf("%-28s %12.1f %12v\n", name, ops/1000, p50)
	}

	run("1 outstanding", cluster.Options{Seed: 1}, 1)
	run("2 outstanding (paper ~2x)", cluster.Options{Seed: 1}, 2)
	run("8 outstanding", cluster.Options{Seed: 1}, 8)
	run("8 outstanding + batching", cluster.Options{Seed: 1, BatchSize: 8}, 8)

	fmt.Println("\nThe paper reports ~91 kops at depth 1 and a 2x gain from")
	fmt.Println("interleaving (§9); batching is its named-but-unimplemented next step.")
}
