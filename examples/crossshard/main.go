// crossshard demonstrates multi-key operations spanning consensus groups:
// scatter-gather MGETs (one sub-read per touched group, merged back in key
// order, max-leg latency), 2PC-style multi-key writes (prepare/lock in every
// participant group, durable decision in the deterministic coordinator
// group, then commit), and abort-on-timeout when a participant group stalls
// mid-prepare — the healthy groups release their locks and stay writable.
//
//	go run ./examples/crossshard
package main

import (
	"fmt"

	ubft "repro"
	"repro/internal/app"
	"repro/internal/bench"
	"repro/internal/wire"
)

const shards = 4

func main() {
	fmt.Println("== Cross-shard multi-key operations: 4 uBFT groups, Redis-style store ==")

	d := newDeployment(1)
	defer d.Stop()

	// One key per shard, so every multi-key op below spans groups.
	keys := make([][]byte, shards)
	for s := range keys {
		keys[s] = keyOn(s)
	}

	// --- 2PC multi-key write across all four groups -----------------------
	pairs := make([]app.RPair, shards)
	for s, k := range keys {
		pairs[s] = app.RPair{Key: k, Val: []byte(fmt.Sprintf("value-%d", s))}
	}
	res, lat, err := d.InvokeSync(0, app.EncodeRMSet(pairs...), 50*ubft.Millisecond)
	check("RMSet", res, err)
	fmt.Printf("\n2PC write of %d keys across %d groups: status %d in %v\n", len(pairs), shards, res[0], lat)
	fmt.Println("  (prepare+lock per group -> decision logged in coordinator group 0 -> commit)")

	// --- scatter-gather MGET over every group -----------------------------
	res, lat, err = d.InvokeSync(0, app.EncodeRMGet(keys...), 50*ubft.Millisecond)
	check("MGET", res, err)
	fmt.Printf("\nScatter-gather MGET of %d keys: status %d, max-leg latency %v\n", len(keys), res[0], lat)
	printMerged(res, keys)

	// --- abort-on-timeout: a stalled participant cannot wedge the rest ----
	fmt.Println("\nStalling group 3 and writing {group0, group3} keys transactionally...")
	d2 := newDeployment(2)
	defer d2.Stop()
	for _, r := range d2.Groups[3].Replicas {
		r.Stop()
	}
	res, lat, err = d2.InvokeSync(0, app.EncodeRMSet(
		app.RPair{Key: keyOn(0), Val: []byte("never")},
		app.RPair{Key: keyOn(3), Val: []byte("never")},
	), 50*ubft.Millisecond)
	check("RMSet with stalled participant", res, err)
	fmt.Printf("  outcome: status %d (RAborted=%d) after the %v prepare timeout\n", res[0], app.RAborted, lat)
	d2.Eng.RunFor(10 * ubft.Millisecond) // let the aborts release the locks
	res, _, err = d2.InvokeSync(0, app.EncodeRSet(keyOn(0), []byte("fine")), 50*ubft.Millisecond)
	check("RSet after abort", res, err)
	fmt.Printf("  healthy group 0 writable again after abort: status %d\n", res[0])

	// --- throughput vs cross-shard fraction -------------------------------
	fmt.Println("\nThroughput vs cross-shard fraction (S=4, 4 in flight per client):")
	fmt.Printf("  %-10s %14s %10s %8s %12s\n", "fraction", "kops/s (virt)", "cross-ops", "aborted", "p50 latency")
	for _, frac := range []float64{0, 0.10, 0.50} {
		r := bench.CrossShardMix(1, shards, 4, 150, frac)
		fmt.Printf("  %-10s %14.1f %10d %8d %12v\n",
			fmt.Sprintf("%.0f%%", frac*100), r.OpsPerSec/1000, r.CrossOps, r.Aborted, r.Rec.Median())
	}
	fmt.Println("\nThe 0% row is bit-identical to the single-shard-routed baseline;")
	fmt.Println("the other rows price the scatter-gather and 2PC coordination.")
}

func newDeployment(seed int64) *ubft.ShardDeployment {
	// Routing and cross-shard execution derive from RKV's capability
	// interfaces (Router/Fragmenter/TxnParticipant) — no routing glue.
	return ubft.NewSharded(ubft.ShardOptions{
		Seed:           seed,
		Shards:         shards,
		NewApp:         func(int) ubft.StateMachine { return app.NewRKV() },
		PrepareTimeout: 2 * ubft.Millisecond,
	})
}

// keyOn returns a probe key hashing onto shard s.
func keyOn(s int) []byte {
	for i := 0; ; i++ {
		k := []byte(fmt.Sprintf("demo-%d-%02d", s, i))
		if app.ShardOfKey(k, shards) == s {
			return k
		}
	}
}

func check(what string, res []byte, err error) {
	if err != nil || len(res) == 0 {
		panic(fmt.Sprintf("%s failed: res=%v err=%v", what, res, err))
	}
}

// printMerged decodes the merged MGET response (ROK, count, then per key a
// found flag plus value) for display.
func printMerged(res []byte, keys [][]byte) {
	rd := wire.NewReader(res)
	rd.U8()
	n := int(rd.Uvarint())
	for i := 0; i < n; i++ {
		if rd.Bool() {
			fmt.Printf("    %-14q = %q\n", keys[i], rd.Bytes())
		} else {
			fmt.Printf("    %-14q = <miss>\n", keys[i])
		}
	}
}
