// sharding demonstrates horizontal throughput scaling: S independent uBFT
// consensus groups on one simulated fabric, the key space hash-partitioned
// across them, all sharing the single 2f_m+1 memory-node pool. Each group
// has its own leader, window and CTBcast tail, so decided requests per
// virtual second grow near-linearly with S.
//
//	go run ./examples/sharding
package main

import (
	"fmt"

	ubft "repro"
	"repro/internal/app"
	"repro/internal/bench"
)

func main() {
	fmt.Println("== uBFT horizontal scaling: sharded KV, 4 requests in flight per shard ==")
	fmt.Printf("%-8s %14s %14s %10s %12s\n", "shards", "kops/s (virt)", "kops/shard", "speedup", "p50 latency")

	var base float64
	for _, s := range []int{1, 2, 4, 8} {
		res := bench.ShardScaling(1, s, 4, 300)
		if base == 0 {
			base = res.OpsPerSec
		}
		fmt.Printf("%-8d %14.1f %14.1f %9.2fx %12v\n",
			s, res.OpsPerSec/1000, res.OpsPerSec/float64(s)/1000,
			res.OpsPerSec/base, res.Rec.Median())
	}

	fmt.Println("\nCross-shard requests execute across groups (see examples/crossshard):")
	demoCrossShard()
}

func demoCrossShard() {
	const shards = 4
	d := ubft.NewSharded(ubft.ShardOptions{
		Seed:   7,
		Shards: shards,
		NewApp: func(int) ubft.StateMachine { return app.NewRKV() },
	})
	defer d.Stop()

	// Two keys on different shards: an MGET over both scatter-gathers.
	var a, b []byte
	for i := 0; b == nil; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		switch {
		case a == nil:
			a = k
		case app.ShardOfKey(k, shards) != app.ShardOfKey(a, shards):
			b = k
		}
	}
	if res, _, err := d.InvokeSync(0, app.EncodeRSet(a, []byte("v")), 50*ubft.Millisecond); err != nil || res[0] != app.ROK {
		panic(fmt.Sprintf("RSet failed: %v %v", res, err))
	}
	res, lat, err := d.InvokeSync(0, app.EncodeRMGet(a, b), 50*ubft.Millisecond)
	if err != nil || len(res) == 0 {
		panic(fmt.Sprintf("cross-shard MGET failed: res=%v err=%v", res, err))
	}
	fmt.Printf("  MGET(%q@shard%d, %q@shard%d) -> status %d, max-leg latency %v\n",
		a, app.ShardOfKey(a, shards), b, app.ShardOfKey(b, shards), res[0], lat)
}
