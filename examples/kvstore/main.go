// kvstore runs the paper's Memcached-shaped workload (§7.1: 16 B keys,
// 32 B values, 30% GETs with 80% hits) against a uBFT-replicated key-value
// store and prints the latency distribution, next to an unreplicated run
// of the same store — the Figure 7 comparison in miniature.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"math/rand"

	ubft "repro"
	"repro/internal/bench"
)

func main() {
	const requests = 500

	fmt.Println("== Memcached-like KV under uBFT vs unreplicated ==")

	repl := bench.NewUBFTFast(1, func() ubft.StateMachine { return ubft.NewKV(0) })
	recR := bench.RunClosedLoop(repl, bench.NewKVWorkload(rand.New(rand.NewSource(1))), 20, requests)
	repl.Stop()

	unrepl := bench.NewUnreplSystem(1, func() ubft.StateMachine { return ubft.NewKV(0) })
	recU := bench.RunClosedLoop(unrepl, bench.NewKVWorkload(rand.New(rand.NewSource(1))), 20, requests)
	unrepl.Stop()

	fmt.Printf("unreplicated: %s\n", recU.Summary())
	fmt.Printf("uBFT (f=1):   %s\n", recR.Summary())
	overhead := recR.Percentile(90) - recU.Percentile(90)
	fmt.Printf("\nByzantine fault tolerance costs %v at the 90th percentile\n", overhead)
	fmt.Println("(the paper reports ~10us of overhead for Memcached, Figure 7)")
}
