// Quickstart: replicate a toy service with uBFT and measure its latency.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	ubft "repro"
)

func main() {
	// A cluster with the paper's defaults: f=1 (3 replicas), f_m=1
	// (3 memory nodes), window 256, CTBcast tail 128, fast path on.
	u := ubft.New(ubft.Options{Seed: 7})
	defer u.Stop()

	// Flip reverses its input; the client accepts a result once f+1
	// replicas agree, so the answer is Byzantine fault tolerant.
	for _, msg := range []string{"hello", "microsecond", "bft"} {
		res, lat := u.InvokeSync(0, []byte(msg), 10*ubft.Millisecond)
		fmt.Printf("flip(%q) = %q  (end-to-end %v)\n", msg, res, lat)
	}

	fast, slow, _ := u.Replicas[0].GroupStats()
	fmt.Printf("\nCTBcast deliveries at replica 0: %d fast-path, %d slow-path\n", fast, slow)
	fmt.Println("All three requests replicated without a single signature on the critical path.")
}
