// orderbook replicates a Liquibook-like financial order matching engine
// with uBFT (§7.1: 32 B orders, 50% BUY / 50% SELL) and shows fills coming
// back from a Byzantine-fault-tolerant matching engine in tens of
// microseconds.
//
//	go run ./examples/orderbook
package main

import (
	"fmt"

	ubft "repro"
	"repro/internal/app"
)

func main() {
	u := ubft.New(ubft.Options{
		Seed:   3,
		NewApp: func() ubft.StateMachine { return ubft.NewOrderBook() },
	})
	defer u.Stop()

	fmt.Println("== BFT order matching engine ==")

	// Build a small book: resting sells at 101..103.
	for price := uint64(101); price <= 103; price++ {
		res, lat := u.InvokeSync(0, app.EncodeOrder(app.OpSell, price, 10), 20*ubft.Millisecond)
		ok, id, _, _, _ := app.DecodeOrderResp(res)
		fmt.Printf("SELL 10 @ %d -> order %d accepted=%v (%v)\n", price, id, ok, lat)
	}

	// A marketable buy crosses the book.
	res, lat := u.InvokeSync(0, app.EncodeOrder(app.OpBuy, 102, 15), 20*ubft.Millisecond)
	_, id, remaining, fills, _ := app.DecodeOrderResp(res)
	fmt.Printf("\nBUY 15 @ 102 -> order %d, %d unfilled, %d fill(s) in %v:\n", id, remaining, len(fills), lat)
	for _, f := range fills {
		fmt.Printf("  filled %d @ %d against order %d\n", f.Qty, f.Price, f.MakerID)
	}

	// Try to cancel the buy: it filled completely, so nothing rests and
	// the (replicated, deterministic) engine reports ok=false.
	res, lat = u.InvokeSync(0, app.EncodeCancel(id), 20*ubft.Millisecond)
	ok, _, _, _, _ := app.DecodeOrderResp(res)
	fmt.Printf("\nCANCEL order %d -> ok=%v (fully filled, nothing resting) (%v)\n", id, ok, lat)
	// Cancel a resting sell instead.
	res, lat = u.InvokeSync(0, app.EncodeCancel(3), 20*ubft.Millisecond)
	ok, _, _, _, _ = app.DecodeOrderResp(res)
	fmt.Printf("CANCEL order 3 -> ok=%v (%v)\n", ok, lat)
	fmt.Println("\nEvery order was totally ordered across 3 replicas; a malicious")
	fmt.Println("replica cannot reorder or drop trades without f+1 agreement breaking.")
}
