// orderbook replicates a Liquibook-like financial order matching engine
// with uBFT (§7.1: 32 B orders, 50% BUY / 50% SELL) and shows fills coming
// back from a Byzantine-fault-tolerant matching engine in tens of
// microseconds.
//
//	go run ./examples/orderbook
package main

import (
	"fmt"

	ubft "repro"
	"repro/internal/app"
)

func main() {
	u := ubft.New(ubft.Options{
		Seed:   3,
		NewApp: func() ubft.StateMachine { return ubft.NewOrderBook() },
	})
	defer u.Stop()

	fmt.Println("== BFT order matching engine ==")

	// Build a small book: resting sells at 101..103.
	for price := uint64(101); price <= 103; price++ {
		res, lat := u.InvokeSync(0, app.EncodeOrder(app.OpSell, price, 10), 20*ubft.Millisecond)
		ok, id, _, _, _ := app.DecodeOrderResp(res)
		fmt.Printf("SELL 10 @ %d -> order %d accepted=%v (%v)\n", price, id, ok, lat)
	}

	// A marketable buy crosses the book.
	res, lat := u.InvokeSync(0, app.EncodeOrder(app.OpBuy, 102, 15), 20*ubft.Millisecond)
	_, id, remaining, fills, _ := app.DecodeOrderResp(res)
	fmt.Printf("\nBUY 15 @ 102 -> order %d, %d unfilled, %d fill(s) in %v:\n", id, remaining, len(fills), lat)
	for _, f := range fills {
		fmt.Printf("  filled %d @ %d against order %d\n", f.Qty, f.Price, f.MakerID)
	}

	// Try to cancel the buy: it filled completely, so nothing rests and
	// the (replicated, deterministic) engine reports ok=false.
	res, lat = u.InvokeSync(0, app.EncodeCancel(id), 20*ubft.Millisecond)
	ok, _, _, _, _ := app.DecodeOrderResp(res)
	fmt.Printf("\nCANCEL order %d -> ok=%v (fully filled, nothing resting) (%v)\n", id, ok, lat)
	// Cancel a resting sell instead.
	res, lat = u.InvokeSync(0, app.EncodeCancel(3), 20*ubft.Millisecond)
	ok, _, _, _, _ = app.DecodeOrderResp(res)
	fmt.Printf("CANCEL order 3 -> ok=%v (%v)\n", ok, lat)
	fmt.Println("\nEvery order was totally ordered across 3 replicas; a malicious")
	fmt.Println("replica cannot reorder or drop trades without f+1 agreement breaking.")

	// --- sharded books: atomic cross-symbol transfers ---------------------
	// The engine implements the capability API (Router/Fragmenter/
	// TxnParticipant), so a symbol-sharded deployment gets scatter-gather
	// top-of-book reads and 2PC pair orders with zero shard-layer glue.
	const shards = 2
	fmt.Printf("\n== Symbol-sharded books (%d uBFT groups) ==\n", shards)
	d := ubft.NewSharded(ubft.ShardOptions{
		Seed:   5,
		Shards: shards,
		NewApp: func(int) ubft.StateMachine { return ubft.NewOrderBook() },
	})
	defer d.Stop()
	symOn := func(s int) []byte {
		for i := 0; ; i++ {
			sym := []byte(fmt.Sprintf("SYM%d-%d", s, i))
			if app.ShardOfKey(sym, shards) == s {
				return sym
			}
		}
	}
	a, b := symOn(0), symOn(1)
	for _, leg := range []struct {
		sym   []byte
		price uint64
	}{{a, 100}, {b, 200}} {
		if res, _, err := d.InvokeSync(0, app.EncodeOrderSym(leg.sym, app.OpSell, leg.price, 5), 20*ubft.Millisecond); err != nil || res[0] != 1 {
			panic(fmt.Sprintf("seed sell: %v %v", res, err))
		}
	}
	// A two-legged transfer: buy both symbols atomically. The symbols live
	// on different consensus groups, so this runs as a 2PC transaction.
	pair := app.EncodePairOrder(
		app.OrderLeg{Sym: a, Side: app.OpBuy, Price: 100, Qty: 5},
		app.OrderLeg{Sym: b, Side: app.OpBuy, Price: 200, Qty: 5},
	)
	res, lat, err := d.InvokeSync(0, pair, 50*ubft.Millisecond)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cross-shard pair order (%q buy@100, %q buy@200): status %d in %v\n", a, b, res[0], lat)
	// A scatter-gathered top-of-book read across both groups: both asks
	// were consumed by the committed transfer.
	res, lat, err = d.InvokeSync(0, app.EncodeTops(a, b), 50*ubft.Millisecond)
	if err != nil {
		panic(err)
	}
	fmt.Printf("tops after transfer (max-leg latency %v): both asks consumed atomically\n", lat)
	_ = res
}
