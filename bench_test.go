package ubft

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§7), plus the §9 throughput discussion and ablations
// of the design decisions DESIGN.md calls out. Latencies are VIRTUAL time
// from the deterministic simulation, reported via b.ReportMetric as
// "us/op-virtual" (and friends); wall-clock ns/op only reflects how fast
// the simulator itself runs.
//
// Regenerate everything in table form with: go run ./cmd/ubft-bench -all

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/app"
	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/ctbcast"
	"repro/internal/sim"
)

// reportLatency runs a closed loop on sys and reports its percentiles.
func reportLatency(b *testing.B, sys bench.System, wl bench.Workload, samples int) {
	b.Helper()
	rec := bench.RunClosedLoop(sys, wl, 10, samples)
	sys.Stop()
	if rec.Count() == 0 {
		b.Fatal("no samples recorded")
	}
	b.ReportMetric(rec.Percentile(50).Micros(), "p50-us")
	b.ReportMetric(rec.Percentile(90).Micros(), "p90-us")
	b.ReportMetric(rec.Percentile(99).Micros(), "p99-us")
}

func samples(b *testing.B, base int) int {
	if testing.Short() {
		return base / 10
	}
	return base
}

// ----- Figure 7: end-to-end application latency ------------------------

func fig7Case(b *testing.B, mkSys func(func() app.StateMachine) bench.System,
	mkApp func() app.StateMachine, wl func(*rand.Rand) bench.Workload) {
	b.Helper()
	b.ReportAllocs()
	for b.Loop() {
		reportLatency(b, mkSys(mkApp), wl(rand.New(rand.NewSource(1))), samples(b, 400))
	}
}

func BenchmarkFig7_Flip_Unreplicated(b *testing.B) {
	fig7Case(b, func(mk func() app.StateMachine) bench.System { return bench.NewUnreplSystem(1, mk) },
		func() app.StateMachine { return app.NewFlip() },
		func(r *rand.Rand) bench.Workload { return bench.NewFlipWorkload(32, r) })
}

func BenchmarkFig7_Flip_Mu(b *testing.B) {
	fig7Case(b, func(mk func() app.StateMachine) bench.System { return bench.NewMuSystem(1, mk) },
		func() app.StateMachine { return app.NewFlip() },
		func(r *rand.Rand) bench.Workload { return bench.NewFlipWorkload(32, r) })
}

func BenchmarkFig7_Flip_UBFT(b *testing.B) {
	fig7Case(b, func(mk func() app.StateMachine) bench.System { return bench.NewUBFTFast(1, mk) },
		func() app.StateMachine { return app.NewFlip() },
		func(r *rand.Rand) bench.Workload { return bench.NewFlipWorkload(32, r) })
}

func BenchmarkFig7_Memcached_UBFT(b *testing.B) {
	fig7Case(b, func(mk func() app.StateMachine) bench.System { return bench.NewUBFTFast(1, mk) },
		func() app.StateMachine { return app.NewKV(0) },
		func(r *rand.Rand) bench.Workload { return bench.NewKVWorkload(r) })
}

func BenchmarkFig7_Liquibook_UBFT(b *testing.B) {
	fig7Case(b, func(mk func() app.StateMachine) bench.System { return bench.NewUBFTFast(1, mk) },
		func() app.StateMachine { return app.NewOrderBook() },
		func(r *rand.Rand) bench.Workload { return bench.NewOrderWorkload(r) })
}

func BenchmarkFig7_Redis_UBFT(b *testing.B) {
	fig7Case(b, func(mk func() app.StateMachine) bench.System { return bench.NewUBFTFast(1, mk) },
		func() app.StateMachine { return app.NewRKV() },
		func(r *rand.Rand) bench.Workload { return bench.NewRKVWorkload(r) })
}

// ----- Figure 8: latency vs request size -------------------------------

func fig8Case(b *testing.B, mk func() bench.System, size, n int) {
	b.Helper()
	b.ReportAllocs()
	for b.Loop() {
		reportLatency(b, mk(), bench.NewFlipWorkload(size, rand.New(rand.NewSource(1))), samples(b, n))
	}
}

func BenchmarkFig8_UBFTFast_64B(b *testing.B) {
	fig8Case(b, func() bench.System { return bench.NewUBFTFast(1, nil) }, 64, 300)
}

func BenchmarkFig8_UBFTFast_4KiB(b *testing.B) {
	fig8Case(b, func() bench.System { return bench.NewUBFTFast(1, nil) }, 4096, 300)
}

func BenchmarkFig8_UBFTSlow_64B(b *testing.B) {
	fig8Case(b, func() bench.System { return bench.NewUBFTSlow(1, nil) }, 64, 60)
}

func BenchmarkFig8_MinBFTHMAC_64B(b *testing.B) {
	fig8Case(b, func() bench.System { return bench.NewMinBFTSystem(1, MinBFTHMAC, nil) }, 64, 60)
}

func BenchmarkFig8_MinBFTVanilla_64B(b *testing.B) {
	fig8Case(b, func() bench.System { return bench.NewMinBFTSystem(1, MinBFTVanilla, nil) }, 64, 60)
}

// ----- Figure 9: latency breakdown --------------------------------------

func BenchmarkFig9_Breakdown(b *testing.B) {
	for b.Loop() {
		rows := bench.Fig9(1, samples(b, 100))
		b.ReportMetric(rows[0].E2E.Micros(), "fast-e2e-us")
		b.ReportMetric(rows[1].E2E.Micros(), "slow-e2e-us")
		b.ReportMetric(rows[1].Crypto.Micros(), "slow-crypto-us")
	}
}

// ----- Figure 10: non-equivocation mechanisms ---------------------------

func BenchmarkFig10_CTBFast_16B(b *testing.B) {
	b.ReportAllocs()
	for b.Loop() {
		rec := bench.NonEquivCTB(1, ctbcast.FastOnly, 16, samples(b, 300))
		b.ReportMetric(rec.Median().Micros(), "median-us")
	}
}

func BenchmarkFig10_CTBSlow_16B(b *testing.B) {
	b.ReportAllocs()
	for b.Loop() {
		rec := bench.NonEquivCTB(1, ctbcast.SlowOnly, 16, samples(b, 60))
		b.ReportMetric(rec.Median().Micros(), "median-us")
	}
}

func BenchmarkFig10_SGX_16B(b *testing.B) {
	for b.Loop() {
		rec := bench.NonEquivSGX(1, 16, samples(b, 300))
		b.ReportMetric(rec.Median().Micros(), "median-us")
	}
}

// ----- Figure 11: CTBcast tail vs tail latency --------------------------

func fig11Case(b *testing.B, tail int) {
	b.Helper()
	b.ReportAllocs()
	for b.Loop() {
		s := bench.NewUBFTSystem(cluster.Options{Seed: 1, Tail: tail, MsgCap: 4096})
		rec := bench.RunClosedLoop(s, bench.NewFlipWorkload(64, rand.New(rand.NewSource(1))), 20, samples(b, 400))
		s.Stop()
		b.ReportMetric(rec.Percentile(90).Micros(), "p90-us")
		b.ReportMetric(rec.Percentile(99).Micros(), "p99-us")
	}
}

func BenchmarkFig11_Tail16(b *testing.B)  { fig11Case(b, 16) }
func BenchmarkFig11_Tail32(b *testing.B)  { fig11Case(b, 32) }
func BenchmarkFig11_Tail64(b *testing.B)  { fig11Case(b, 64) }
func BenchmarkFig11_Tail128(b *testing.B) { fig11Case(b, 128) }

// ----- Table 2: memory consumption --------------------------------------

func BenchmarkTable2_Memory(b *testing.B) {
	for b.Loop() {
		rows := bench.Table2(1)
		for _, r := range rows {
			if r.ReqSize == 64 && r.Tail == 128 {
				b.ReportMetric(float64(r.LocalBytes)/(1<<20), "local-MiB-t128")
				b.ReportMetric(float64(r.DisagActual)/1024, "disag-KiB-t128")
			}
		}
	}
}

// ----- §9: throughput ----------------------------------------------------

func BenchmarkThroughput_Depth1(b *testing.B) {
	for b.Loop() {
		s := bench.NewUBFTFast(1, nil)
		ops, _ := bench.RunPipelined(s, bench.NewFlipWorkload(32, rand.New(rand.NewSource(1))), 1, samples(b, 400))
		s.Stop()
		b.ReportMetric(ops/1000, "kops")
	}
}

func BenchmarkThroughput_Depth2(b *testing.B) {
	for b.Loop() {
		s := bench.NewUBFTFast(1, nil)
		ops, _ := bench.RunPipelined(s, bench.NewFlipWorkload(32, rand.New(rand.NewSource(1))), 2, samples(b, 400))
		s.Stop()
		b.ReportMetric(ops/1000, "kops")
	}
}

// Extension: horizontal scaling via the shard layer — S independent
// consensus groups on one fabric, key space hash-partitioned across them,
// memory nodes shared. Decided-requests/virtual-second should grow near-
// linearly in S (each group has its own leader, window and CTBcast tail;
// the fabric model has no shared-switch bottleneck).
func BenchmarkShardScaling(b *testing.B) {
	for _, s := range []int{1, 2, 4, 8} {
		s := s
		b.Run(fmt.Sprintf("S%d", s), func(b *testing.B) {
			b.ReportAllocs()
			for b.Loop() {
				res := bench.ShardScaling(1, s, 4, samples(b, 200))
				if res.Completed == 0 {
					b.Fatal("no requests completed")
				}
				b.ReportMetric(res.OpsPerSec/1000, "kops-virtual")
				b.ReportMetric(res.OpsPerSec/float64(s)/1000, "kops-per-shard")
				b.ReportMetric(float64(res.Decided), "decided-slots")
			}
		})
	}
}

// Cross-shard mix: S=4 Redis-style groups where a configurable fraction of
// requests span two shards — scatter-gather MGETs and 2PC multi-key writes.
// The 0% row is bit-identical to the single-shard-routed baseline (gated by
// TestCrossShardZeroFractionMatchesBaseline), so the other rows read as the
// pure cost of cross-shard coordination.
func BenchmarkCrossShard(b *testing.B) {
	for _, frac := range []float64{0, 0.10, 0.50} {
		frac := frac
		b.Run(fmt.Sprintf("S4_frac%02d", int(frac*100)), func(b *testing.B) {
			b.ReportAllocs()
			for b.Loop() {
				res := bench.CrossShardMix(1, 4, 4, samples(b, 200), frac)
				if res.Completed == 0 {
					b.Fatal("no requests completed")
				}
				b.ReportMetric(res.OpsPerSec/1000, "kops-virtual")
				b.ReportMetric(float64(res.CrossOps), "cross-ops")
				b.ReportMetric(float64(res.Aborted), "aborted")
				b.ReportMetric(res.Rec.Percentile(50).Micros(), "p50-us")
			}
		})
	}
}

// Capability-API transactions: the same cross-shard experiment over the
// Memcached-style store (multi-key KVMGet/KVMSet) — every 2PC step goes
// through the generic app.TxnParticipant hooks, no app-specific opcode in
// the shard layer.
func BenchmarkCrossShardKV(b *testing.B) {
	for _, frac := range []float64{0, 0.10, 0.50} {
		frac := frac
		b.Run(fmt.Sprintf("S4_frac%02d", int(frac*100)), func(b *testing.B) {
			b.ReportAllocs()
			for b.Loop() {
				res := bench.CrossShardKVMix(1, 4, 4, samples(b, 200), frac)
				if res.Completed == 0 {
					b.Fatal("no requests completed")
				}
				b.ReportMetric(res.OpsPerSec/1000, "kops-virtual")
				b.ReportMetric(float64(res.CrossOps), "cross-ops")
				b.ReportMetric(float64(res.Aborted), "aborted")
				b.ReportMetric(res.Rec.Percentile(50).Micros(), "p50-us")
			}
		})
	}
}

// Capability-API transactions over the order matching engine: symbol-
// sharded books with two-symbol top-of-book reads (scatter-gather) and
// atomic two-legged pair orders (2PC transfers).
func BenchmarkCrossShardOrderBook(b *testing.B) {
	for _, frac := range []float64{0, 0.10, 0.50} {
		frac := frac
		b.Run(fmt.Sprintf("S4_frac%02d", int(frac*100)), func(b *testing.B) {
			b.ReportAllocs()
			for b.Loop() {
				res := bench.CrossShardOrderMix(1, 4, 4, samples(b, 200), frac)
				if res.Completed == 0 {
					b.Fatal("no requests completed")
				}
				b.ReportMetric(res.OpsPerSec/1000, "kops-virtual")
				b.ReportMetric(float64(res.CrossOps), "cross-ops")
				b.ReportMetric(float64(res.Aborted), "aborted")
				b.ReportMetric(res.Rec.Percentile(50).Micros(), "p50-us")
			}
		})
	}
}

// Read fast path: the read-dominant serving mix at 50/90/99% reads with
// unordered f+1 quorum reads off and on. With FastReads=false every read
// pays the full ordering pipeline (the seed behavior, bit-identical —
// gated by TestReadMixFastOffMatchesPlainDriver); with FastReads=true
// reads cost one round trip + f+1 matching digests and only writes consume
// consensus slots. The order-book rows are the headline (>= 2x ops at 90%
// reads, gated by TestReadMixFastSpeedup); the Memcached rows show the
// exec-bound regime, where every replica still pays the ~15us server path
// per read and the win is correspondingly smaller. The point-read rows
// drive single-key KVGets through the versioned store, and the strong row
// prices the linearizable 2f+1 mode against the f+1 fast path.
func BenchmarkReadMix(b *testing.B) {
	apps := []struct {
		name string
		run  func(seed int64, shards, outstanding, n int, frac float64, fast bool) bench.ReadMixResult
	}{
		{"KV", bench.ReadMix},
		{"OrderBook", bench.ReadMixOrder},
	}
	for _, a := range apps {
		for _, frac := range []float64{0.50, 0.90, 0.99} {
			for _, fast := range []bool{false, true} {
				a, frac, fast := a, frac, fast
				mode := "ordered"
				if fast {
					mode = "fast"
				}
				b.Run(fmt.Sprintf("%s_read%02d_%s", a.name, int(frac*100), mode), func(b *testing.B) {
					b.ReportAllocs()
					for b.Loop() {
						res := a.run(1, 2, 4, samples(b, 200), frac, fast)
						if res.Completed == 0 {
							b.Fatal("no requests completed")
						}
						b.ReportMetric(res.OpsPerSec/1000, "kops-virtual")
						b.ReportMetric(res.ReadRec.Percentile(50).Micros(), "read-p50-us")
						b.ReportMetric(res.WriteRec.Percentile(50).Micros(), "write-p50-us")
						b.ReportMetric(float64(res.Fallbacks), "fallbacks")
					}
				})
			}
		}
	}
	for _, row := range []struct {
		name string
		run  func(n int) bench.ReadMixResult
	}{
		{"KVPoint_read90_ordered", func(n int) bench.ReadMixResult { return bench.ReadMixPoint(1, 2, 4, n, 0.90, false) }},
		{"KVPoint_read90_fast", func(n int) bench.ReadMixResult { return bench.ReadMixPoint(1, 2, 4, n, 0.90, true) }},
		{"KVPoint_read90_strong", func(n int) bench.ReadMixResult { return bench.ReadMixStrong(1, 2, 4, n, 0.90) }},
	} {
		row := row
		b.Run(row.name, func(b *testing.B) {
			b.ReportAllocs()
			for b.Loop() {
				res := row.run(samples(b, 200))
				if res.Completed == 0 {
					b.Fatal("no requests completed")
				}
				b.ReportMetric(res.OpsPerSec/1000, "kops-virtual")
				b.ReportMetric(res.ReadRec.Percentile(50).Micros(), "read-p50-us")
				b.ReportMetric(res.WriteRec.Percentile(50).Micros(), "write-p50-us")
				b.ReportMetric(float64(res.StrongOK), "strong-ok")
				b.ReportMetric(float64(res.Fallbacks), "fallbacks")
			}
		})
	}
}

// Extension (§9): leader-side batching, which the paper names as a further
// throughput optimization but does not implement. Eight requests in flight
// coalesce into shared consensus slots.
func BenchmarkThroughput_Batching(b *testing.B) {
	for b.Loop() {
		s := bench.NewUBFTSystem(cluster.Options{Seed: 1, BatchSize: 8})
		ops, _ := bench.RunPipelined(s, bench.NewFlipWorkload(32, rand.New(rand.NewSource(1))), 8, samples(b, 400))
		s.Stop()
		b.ReportMetric(ops/1000, "kops")
	}
}

// ----- Ablations (DESIGN.md §5) ------------------------------------------

// Ablation: force the slow path everywhere — the cost of signatures on the
// critical path, i.e. what uBFT's fast path buys.
func BenchmarkAblation_NoFastPath(b *testing.B) {
	for b.Loop() {
		s := bench.NewUBFTSlow(1, nil)
		reportLatency(b, s, bench.NewFlipWorkload(32, rand.New(rand.NewSource(1))), samples(b, 60))
	}
}

// Ablation: disable the Echo round (§5.4) — lower latency but a Byzantine
// client could stall slots.
func BenchmarkAblation_NoEchoRound(b *testing.B) {
	for b.Loop() {
		s := bench.NewUBFTSystem(cluster.Options{Seed: 1, EchoTimeout: -1})
		reportLatency(b, s, bench.NewFlipWorkload(32, rand.New(rand.NewSource(1))), samples(b, 400))
	}
}

// Ablation: CTBcast in eager both-paths mode (Algorithm 1 as printed) —
// signatures run alongside the fast path.
func BenchmarkAblation_EagerBothPaths(b *testing.B) {
	for b.Loop() {
		s := bench.NewUBFTSystem(cluster.Options{Seed: 1, CTBMode: ctbcast.BothEager})
		reportLatency(b, s, bench.NewFlipWorkload(32, rand.New(rand.NewSource(1))), samples(b, 60))
	}
}

// Ablation: smaller register-replication quorum (f_m = 0: one memory
// node, no fault tolerance) — measures the cost of register replication.
func BenchmarkAblation_SingleMemNode(b *testing.B) {
	for b.Loop() {
		s := bench.NewUBFTSystem(cluster.Options{
			Seed: 1, Fm: 0, DisableFastPath: true, CTBMode: ctbcast.SlowOnly,
		})
		reportLatency(b, s, bench.NewFlipWorkload(32, rand.New(rand.NewSource(1))), samples(b, 60))
	}
}

// Sanity: the headline comparison (used by EXPERIMENTS.md).
func BenchmarkHeadline_UBFTvsMinBFT(b *testing.B) {
	for b.Loop() {
		fast := bench.NewUBFTFast(1, nil)
		recF := bench.RunClosedLoop(fast, bench.NewFlipWorkload(32, rand.New(rand.NewSource(1))), 10, samples(b, 200))
		fast.Stop()
		mb := bench.NewMinBFTSystem(1, MinBFTVanilla, nil)
		recM := bench.RunClosedLoop(mb, bench.NewFlipWorkload(32, rand.New(rand.NewSource(1))), 5, samples(b, 50))
		mb.Stop()
		b.ReportMetric(recF.Median().Micros(), "ubft-fast-us")
		b.ReportMetric(recM.Median().Micros(), "minbft-vanilla-us")
		b.ReportMetric(recM.Median().Micros()/recF.Median().Micros(), "speedup-x")
	}
}

var _ = sim.Microsecond // keep the sim import for metric docs
